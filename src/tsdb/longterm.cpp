#include "tsdb/longterm.h"

#include <algorithm>
#include <map>

namespace ceems::tsdb {

LongTermStore::LongTermStore(LongTermConfig config) : config_(config) {}

std::size_t LongTermStore::sync_from(const TimeSeriesStore& hot) {
  std::lock_guard lock(mu_);
  std::size_t copied = 0;
  for (const auto& series : hot.series_since(sync_cursor_ + 1)) {
    for (const auto& sample : series.samples) {
      if (raw_.append(series.labels, sample.t, sample.v)) ++copied;
    }
  }
  if (auto max_t = raw_.max_time()) sync_cursor_ = *max_t;
  return copied;
}

void LongTermStore::compact(common::TimestampMs now) {
  std::lock_guard lock(mu_);
  TimestampMs cutoff = now - config_.downsample_after_ms;
  if (cutoff > downsample_cursor_) {
    // Bucketize everything in [downsample_cursor_, cutoff) into the coarse
    // resolution, keeping the last sample per bucket.
    for (const auto& view : raw_.select({}, downsample_cursor_, cutoff - 1)) {
      std::map<int64_t, SamplePoint> buckets;
      for (const auto& sample : view.samples()) {
        buckets[sample.t / config_.resolution_ms] = sample;
      }
      for (const auto& [bucket, sample] : buckets) {
        downsampled_.append(view.labels, sample.t, sample.v);
      }
    }
    raw_.purge_before(cutoff);
    downsample_cursor_ = cutoff;
  }
  if (config_.retention_ms > 0) {
    downsampled_.purge_before(now - config_.retention_ms);
  }
}

std::vector<SeriesView> LongTermStore::select(
    const std::vector<LabelMatcher>& matchers, TimestampMs min_t,
    TimestampMs max_t) const {
  std::lock_guard lock(mu_);
  std::vector<SeriesView> coarse = downsampled_.select(matchers, min_t, max_t);
  std::vector<SeriesView> fine = raw_.select(matchers, min_t, max_t);

  // Merge per label set: downsampled history followed by the raw tail.
  // Keyed by the full label set, not its fingerprint — two distinct label
  // sets whose fingerprints collide must stay distinct series. Series
  // present on only one side keep their chunk-backed views. Straddling
  // series are spliced slice-wise: compact() moves raw data into the
  // coarse store before purging it, so every raw slice is strictly newer
  // than the coarse end and rides along still-compressed — no
  // materialisation, no decode. The decode-and-filter branch below only
  // fires if that invariant is ever broken.
  std::map<Labels, SeriesView> merged;
  for (auto& view : coarse) {
    Labels key = view.labels;
    merged.emplace(std::move(key), std::move(view));
  }
  std::size_t spliced_count = 0;
  for (auto& view : fine) {
    auto it = merged.find(view.labels);
    if (it == merged.end()) {
      Labels key = view.labels;
      merged.emplace(std::move(key), std::move(view));
      continue;
    }
    ++spliced_count;
    SeriesView& dst = it->second;
    TimestampMs newest = dst.slices.back().max_time();
    dst.slices.reserve(dst.slices.size() + view.slices.size());
    for (auto& slice : view.slices) {
      if (slice.min_time() > newest) {
        newest = slice.max_time();
        dst.slices.push_back(std::move(slice));
        continue;
      }
      // Overlap: decode (if needed) and keep only strictly newer points.
      std::vector<SamplePoint> points;
      if (slice.chunk) {
        auto decoded = slice.chunk->decode();
        if (decoded) points = std::move(*decoded);
      } else {
        points = std::move(slice.points);
      }
      std::vector<SamplePoint> kept;
      for (const auto& sample : points) {
        if (sample.t > newest) kept.push_back(sample);
      }
      select_stats_.spliced_points_copied += kept.size();
      if (!kept.empty()) {
        newest = kept.back().t;
        dst.slices.push_back(ChunkSlice{nullptr, std::move(kept)});
      }
    }
  }
  select_stats_.spliced_views += spliced_count;
  select_stats_.chunk_backed_views += merged.size() - spliced_count;
  std::vector<SeriesView> out;
  out.reserve(merged.size());
  // Map iteration is ordered by labels, so output stays deterministic.
  for (auto& [key, view] : merged) out.push_back(std::move(view));
  return out;
}

LongTermSelectStats LongTermStore::select_stats() const {
  std::lock_guard lock(mu_);
  return select_stats_;
}

std::vector<uint64_t> LongTermStore::version_signature() const {
  std::vector<uint64_t> out = raw_.version_signature();
  std::vector<uint64_t> coarse = downsampled_.version_signature();
  out.insert(out.end(), coarse.begin(), coarse.end());
  return out;
}

StorageStats LongTermStore::stats() const {
  std::lock_guard lock(mu_);
  StorageStats raw = raw_.stats();
  StorageStats coarse = downsampled_.stats();
  StorageStats out;
  out.num_series = std::max(raw.num_series, coarse.num_series);
  out.num_samples = raw.num_samples + coarse.num_samples;
  out.approx_bytes = raw.approx_bytes + coarse.approx_bytes;
  // The symbol table is process-global: take it once, don't sum it.
  out.symbol_bytes = raw.symbol_bytes;
  return out;
}

}  // namespace ceems::tsdb
