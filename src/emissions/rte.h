// Simulated RTE eco2mix real-time emission factor for France. The real API
// publishes gCO2/kWh every 15 minutes; the simulation reproduces its key
// statistical features: a low nuclear-dominated baseline, a diurnal swing
// (gas peakers at morning/evening peaks), a seasonal winter uplift, and
// 15-minute quantization. Deterministic in the timestamp, so experiments
// are reproducible.
#pragma once

#include "emissions/provider.h"

namespace ceems::emissions {

class RteProvider final : public Provider {
 public:
  // `availability` < 1.0 simulates API outages (deterministic in t).
  explicit RteProvider(double availability = 1.0)
      : availability_(availability) {}

  std::string name() const override { return "rte"; }
  std::optional<EmissionFactor> factor(const std::string& zone,
                                       common::TimestampMs t_ms) override;

  // The underlying continuous model, exposed for tests/benches.
  static double model_gco2_per_kwh(common::TimestampMs t_ms);

 private:
  double availability_;
};

}  // namespace ceems::emissions
