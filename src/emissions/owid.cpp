#include "emissions/owid.h"

namespace ceems::emissions {

OwidProvider::OwidProvider() {
  // Yearly-average carbon intensity of electricity, gCO2e/kWh (OWID 2023
  // vintage, rounded).
  factors_ = {
      {"FR", 56},  {"DE", 381}, {"US", 369}, {"GB", 238}, {"ES", 174},
      {"IT", 331}, {"PL", 662}, {"SE", 41},  {"NO", 30},  {"FI", 79},
      {"CH", 46},  {"AT", 158}, {"BE", 153}, {"NL", 268}, {"DK", 151},
      {"PT", 166}, {"IE", 282}, {"CZ", 415}, {"JP", 462}, {"KR", 432},
      {"CN", 582}, {"IN", 713}, {"AU", 549}, {"CA", 128}, {"BR", 96},
  };
}

std::optional<EmissionFactor> OwidProvider::factor(const std::string& zone,
                                                   common::TimestampMs) {
  auto it = factors_.find(zone);
  if (it == factors_.end()) return std::nullopt;
  return EmissionFactor{it->second, "owid", /*realtime=*/false};
}

}  // namespace ceems::emissions
