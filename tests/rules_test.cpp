#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/yamlconf.h"
#include "core/rules_library.h"
#include "tsdb/rules.h"

namespace ceems::tsdb {
namespace {

Labels named(const std::string& name,
             std::initializer_list<Labels::Pair> pairs = {}) {
  return Labels(pairs).with_name(name);
}

class RulesTest : public ::testing::Test {
 protected:
  RulesTest() : store_(std::make_shared<TimeSeriesStore>()), engine_(store_) {}

  StorePtr store_;
  RuleEngine engine_;
};

TEST_F(RulesTest, RecordWritesNamedSeries) {
  store_->append(named("a", {{"h", "x"}}), 1000, 10);
  store_->append(named("a", {{"h", "y"}}), 1000, 20);
  RuleGroup group;
  group.name = "g";
  group.rules = {{"a:doubled", "a * 2", {}, nullptr}};
  engine_.add_group(std::move(group));

  RuleEvalStats stats = engine_.evaluate_all(1000);
  EXPECT_EQ(stats.rules_evaluated, 1u);
  EXPECT_EQ(stats.samples_written, 2u);
  EXPECT_EQ(stats.rule_failures, 0u);

  auto result = store_->select(
      {{"__name__", metrics::LabelMatcher::Op::kEq, "a:doubled"}}, 0, 2000);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_DOUBLE_EQ(result[0].samples()[0].v, 20);
}

TEST_F(RulesTest, StaticLabelsAttached) {
  store_->append(named("a"), 1000, 1);
  RuleGroup group;
  group.name = "g";
  group.rules = {{"a:copy", "a", {{"group", "intel"}}, nullptr}};
  engine_.add_group(std::move(group));
  engine_.evaluate_all(1000);
  auto result = store_->select(
      {{"group", metrics::LabelMatcher::Op::kEq, "intel"}}, 0, 2000);
  ASSERT_EQ(result.size(), 1u);
}

TEST_F(RulesTest, LaterRulesSeeEarlierResults) {
  store_->append(named("a"), 1000, 5);
  RuleGroup group;
  group.name = "g";
  group.rules = {{"step:one", "a * 2", {}, nullptr},
                 {"step:two", "step:one + 1", {}, nullptr}};
  engine_.add_group(std::move(group));
  engine_.evaluate_all(1000);
  auto result = store_->select(
      {{"__name__", metrics::LabelMatcher::Op::kEq, "step:two"}}, 0, 2000);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_DOUBLE_EQ(result[0].samples()[0].v, 11);
}

TEST_F(RulesTest, InvalidRuleFailsFastAtLoad) {
  RuleGroup bad_expr;
  bad_expr.rules = {{"x", "sum(", {}, nullptr}};
  EXPECT_THROW(engine_.add_group(std::move(bad_expr)), promql::ParseError);
  RuleGroup bad_name;
  bad_name.rules = {{"bad-name", "up", {}, nullptr}};
  EXPECT_THROW(engine_.add_group(std::move(bad_name)), promql::ParseError);
}

TEST_F(RulesTest, RuntimeFailureCountedNotFatal) {
  // many-to-many matching error at eval time.
  store_->append(named("a", {{"i", "1"}}), 1000, 1);
  store_->append(named("b", {{"j", "1"}}), 1000, 1);
  store_->append(named("b", {{"j", "2"}}), 1000, 1);
  RuleGroup group;
  group.rules = {{"x", "a * on() group_left() b", {}, nullptr},
                 {"y", "a * 2", {}, nullptr}};
  engine_.add_group(std::move(group));
  RuleEvalStats stats = engine_.evaluate_all(1000);
  EXPECT_EQ(stats.rule_failures, 1u);
  EXPECT_EQ(stats.samples_written, 1u);  // second rule still ran
}

TEST_F(RulesTest, EvaluateDueHonorsGroupInterval) {
  store_->append(named("a"), 0, 1);
  RuleGroup fast;
  fast.name = "fast";
  fast.interval_ms = 1000;
  fast.rules = {{"fast:copy", "a", {}, nullptr}};
  RuleGroup slow;
  slow.name = "slow";
  slow.interval_ms = 10000;
  slow.rules = {{"slow:copy", "a", {}, nullptr}};
  engine_.add_group(std::move(fast));
  engine_.add_group(std::move(slow));

  engine_.evaluate_due(0);      // both run
  engine_.evaluate_due(1000);   // only fast due
  engine_.evaluate_due(2000);   // only fast due
  auto fast_series = store_->select(
      {{"__name__", metrics::LabelMatcher::Op::kEq, "fast:copy"}}, 0, 10000);
  auto slow_series = store_->select(
      {{"__name__", metrics::LabelMatcher::Op::kEq, "slow:copy"}}, 0, 10000);
  ASSERT_EQ(fast_series.size(), 1u);
  ASSERT_EQ(slow_series.size(), 1u);
  EXPECT_EQ(fast_series[0].samples().size(), 3u);
  EXPECT_EQ(slow_series[0].samples().size(), 1u);
}

TEST(RuleParsing, FromYaml) {
  auto root = common::parse_yaml(
      "groups:\n"
      "  - name: energy\n"
      "    interval: 15s\n"
      "    rules:\n"
      "      - record: job:power\n"
      "        expr: a * 2\n"
      "        labels:\n"
      "          nodegroup: intel\n"
      "      - record: job:other\n"
      "        expr: b\n");
  auto groups = parse_rule_groups(root);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].name, "energy");
  EXPECT_EQ(groups[0].interval_ms, 15000);
  ASSERT_EQ(groups[0].rules.size(), 2u);
  EXPECT_EQ(groups[0].rules[0].record, "job:power");
  ASSERT_EQ(groups[0].rules[0].static_labels.size(), 1u);
  EXPECT_EQ(groups[0].rules[0].static_labels[0].second, "intel");
}

// ---- the shipped Jean-Zay rule library ----

TEST(RulesLibrary, AllRulesParse) {
  auto store = std::make_shared<TimeSeriesStore>();
  RuleEngine engine(store);
  for (auto& group : core::jean_zay_rule_groups()) {
    EXPECT_NO_THROW(engine.add_group(std::move(group)));
  }
  for (auto& group : core::equal_split_baseline_rules()) {
    EXPECT_NO_THROW(engine.add_group(std::move(group)));
  }
  for (auto& group : core::long_range_report_rules()) {
    EXPECT_NO_THROW(engine.add_group(std::move(group)));
  }
  EXPECT_GE(engine.group_count(), 9u);
}

TEST(RulesLibrary, LongRangeReportGroupTilesItsWindow) {
  auto groups = core::long_range_report_rules("30m");
  ASSERT_EQ(groups.size(), 1u);
  // Interval equals the window, so consecutive evaluations tile the
  // timeline and every range lands on the alignment grid the
  // resolution-aware planner needs.
  EXPECT_EQ(groups[0].interval_ms, 30 * common::kMillisPerMinute);
  for (const auto& rule : groups[0].rules) {
    EXPECT_NE(rule.expr.find("[30m]"), std::string::npos) << rule.record;
  }

  // The rules evaluate against a store with the expected inputs.
  auto store = std::make_shared<TimeSeriesStore>();
  for (TimestampMs t = 0; t <= 30 * common::kMillisPerMinute; t += 30000) {
    store->append(named("ceems_job_power_watts", {{"uuid", "1"}}), t, 100);
    store->append(named("ceems_rapl_package_joules_total",
                        {{"hostname", "n1"}, {"nodegroup", "intel-cpu"}}),
                  t, static_cast<double>(t) / 1000.0 * 50);
  }
  RuleEngine engine(store);
  for (auto& group : core::long_range_report_rules("30m")) {
    engine.add_group(std::move(group));
  }
  RuleEvalStats stats = engine.evaluate_all(30 * common::kMillisPerMinute);
  EXPECT_EQ(stats.rule_failures, 0u);
  auto energy = store->select(
      {{"__name__", metrics::LabelMatcher::Op::kEq,
        "report:job_energy_joules"}},
      0, common::kMillisPerHour);
  ASSERT_EQ(energy.size(), 1u);
  // 100 W over a 30 min window.
  EXPECT_NEAR(energy[0].samples()[0].v, 100.0 * 30 * 60, 1e-6);
}

// Feeds hand-built node series for one Intel host with two jobs and checks
// that the full Eq. (1) rule chain yields the expected per-job watts.
TEST(RulesLibrary, EquationOneOnIntelGroup) {
  auto store = std::make_shared<TimeSeriesStore>();
  RuleEngine engine(store);
  for (auto& group : core::jean_zay_rule_groups("2m")) {
    engine.add_group(std::move(group));
  }

  auto put = [&](const std::string& name,
                 std::initializer_list<Labels::Pair> pairs, TimestampMs t,
                 double v) {
    store->append(Labels(pairs).with_name(name), t, v);
  };
  Labels::Pair host{"hostname", "n1"};
  Labels::Pair group{"nodegroup", "intel-cpu"};
  for (int i = 0; i <= 4; ++i) {
    TimestampMs t = i * 30000;
    double sec = i * 30.0;
    put("ceems_rapl_package_joules_total", {host, group, {"index", "0"}}, t,
        sec * 120);  // 120 W package
    put("ceems_rapl_dram_joules_total", {host, group, {"index", "0"}}, t,
        sec * 30);  // 30 W dram
    put("ceems_ipmi_dcmi_current_watts", {host, group}, t, 300);
    put("node_cpu_seconds_total", {host, group, {"mode", "user"}}, t,
        sec * 10);  // 10 busy cores
    put("node_cpu_seconds_total", {host, group, {"mode", "idle"}}, t,
        sec * 30);
    put("node_memory_MemTotal_bytes", {host, group}, t, 100e9);
    put("node_memory_MemAvailable_bytes", {host, group}, t, 60e9);  // 40 GB used
    put("ceems_compute_units", {host, group, {"manager", "slurm"}}, t, 2);
    // Job 1: 8 of the 10 busy cores, 30 GB.
    put("ceems_compute_unit_cpu_usage_seconds_total",
        {host, group, {"uuid", "1"}, {"mode", "user"}}, t, sec * 8);
    put("ceems_compute_unit_memory_current_bytes",
        {host, group, {"uuid", "1"}}, t, 30e9);
    // Job 2: 2 cores, 10 GB.
    put("ceems_compute_unit_cpu_usage_seconds_total",
        {host, group, {"uuid", "2"}, {"mode", "user"}}, t, sec * 2);
    put("ceems_compute_unit_memory_current_bytes",
        {host, group, {"uuid", "2"}}, t, 10e9);
  }

  RuleEvalStats stats = engine.evaluate_all(120000);
  EXPECT_EQ(stats.rule_failures, 0u);

  auto result = store->select(
      {{"__name__", metrics::LabelMatcher::Op::kEq, "ceems_job_power_watts"}},
      120000, 120000);
  ASSERT_EQ(result.size(), 2u);
  // Budget: 0.9×300 = 270 W; cpu split 120/150 → 216 W, dram → 54 W.
  // Job1: 216×0.8 + 54×(30/40) + 0.1×300/2 = 172.8 + 40.5 + 15 = 228.3.
  // Job2: 216×0.2 + 54×(10/40) + 15 = 43.2 + 13.5 + 15 = 71.7.
  double job1 = 0, job2 = 0;
  for (const auto& series : result) {
    double v = series.samples().back().v;
    if (*series.labels.get("uuid") == "1") job1 = v;
    else job2 = v;
  }
  EXPECT_NEAR(job1, 228.3, 0.5);
  EXPECT_NEAR(job2, 71.7, 0.5);
  // Conservation: jobs sum to the attributable node budget (0.9+0.1 = all
  // of IPMI).
  EXPECT_NEAR(job1 + job2, 300.0, 1.0);
}

// The shipped YAML rule file (etc/rules/jean-zay.rules.yaml) parses and
// produces the same ceems_job_power_watts as the in-code library for an
// Intel host.
TEST(RulesLibrary, YamlRuleFileMatchesLibrary) {
  std::ifstream in(std::string(CEEMS_SOURCE_DIR) +
                   "/etc/rules/jean-zay.rules.yaml");
  ASSERT_TRUE(in.good()) << "rule file missing";
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto groups = parse_rule_groups(common::parse_yaml(buffer.str()));
  ASSERT_GE(groups.size(), 4u);

  auto run = [](RuleEngine& engine, StorePtr store) {
    auto put = [&](const std::string& name,
                   std::initializer_list<Labels::Pair> pairs, TimestampMs t,
                   double v) {
      store->append(Labels(pairs).with_name(name), t, v);
    };
    Labels::Pair host{"hostname", "n1"};
    Labels::Pair group{"nodegroup", "intel-cpu"};
    for (int i = 0; i <= 4; ++i) {
      TimestampMs t = i * 30000;
      double sec = i * 30.0;
      put("ceems_rapl_package_joules_total", {host, group}, t, sec * 120);
      put("ceems_rapl_dram_joules_total", {host, group}, t, sec * 30);
      put("ceems_ipmi_dcmi_current_watts", {host, group}, t, 300);
      put("node_cpu_seconds_total", {host, group, {"mode", "user"}}, t,
          sec * 10);
      put("node_cpu_seconds_total", {host, group, {"mode", "idle"}}, t,
          sec * 30);
      put("node_memory_MemTotal_bytes", {host, group}, t, 100e9);
      put("node_memory_MemAvailable_bytes", {host, group}, t, 60e9);
      put("ceems_compute_units", {host, group}, t, 1);
      put("ceems_compute_unit_cpu_usage_seconds_total",
          {host, group, {"uuid", "1"}, {"mode", "user"}}, t, sec * 10);
      put("ceems_compute_unit_memory_current_bytes",
          {host, group, {"uuid", "1"}}, t, 40e9);
    }
    engine.evaluate_all(120000);
    auto result = store->select(
        {{"__name__", metrics::LabelMatcher::Op::kEq,
          "ceems_job_power_watts"}},
        120000, 120000);
    return result.empty() ? 0.0 : result[0].samples().back().v;
  };

  StorePtr yaml_store = std::make_shared<TimeSeriesStore>();
  RuleEngine yaml_engine(yaml_store);
  for (auto& group : groups) yaml_engine.add_group(std::move(group));
  double yaml_watts = run(yaml_engine, yaml_store);

  StorePtr lib_store = std::make_shared<TimeSeriesStore>();
  RuleEngine lib_engine(lib_store);
  for (auto& group : core::jean_zay_rule_groups()) {
    lib_engine.add_group(std::move(group));
  }
  double lib_watts = run(lib_engine, lib_store);

  EXPECT_GT(yaml_watts, 100.0);
  EXPECT_NEAR(yaml_watts, lib_watts, 1e-6);
}

}  // namespace
}  // namespace ceems::tsdb
