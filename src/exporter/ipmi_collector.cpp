#include "exporter/ipmi_collector.h"

namespace ceems::exporter {

using metrics::Labels;
using metrics::MetricFamily;
using metrics::MetricType;

std::vector<metrics::MetricFamily> IpmiCollector::collect(
    common::TimestampMs /*now*/) {
  node::DcmiPowerReading reading = node::parse_dcmi_output(command_());

  MetricFamily current{"ceems_ipmi_dcmi_current_watts",
                       "Instantaneous node power from the BMC (DCMI).",
                       MetricType::kGauge,
                       {}};
  current.add(Labels{}, static_cast<double>(reading.watts));
  MetricFamily minimum{"ceems_ipmi_dcmi_min_watts",
                       "Minimum node power over the BMC sampling period.",
                       MetricType::kGauge,
                       {}};
  minimum.add(Labels{}, static_cast<double>(reading.min_watts));
  MetricFamily maximum{"ceems_ipmi_dcmi_max_watts",
                       "Maximum node power over the BMC sampling period.",
                       MetricType::kGauge,
                       {}};
  maximum.add(Labels{}, static_cast<double>(reading.max_watts));
  MetricFamily average{"ceems_ipmi_dcmi_avg_watts",
                       "Average node power over the BMC sampling period.",
                       MetricType::kGauge,
                       {}};
  average.add(Labels{}, static_cast<double>(reading.avg_watts));

  return {current, minimum, maximum, average};
}

}  // namespace ceems::exporter
