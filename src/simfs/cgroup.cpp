#include "simfs/cgroup.h"

#include "common/strutil.h"

namespace ceems::simfs {

CgroupWriter::CgroupWriter(PseudoFsPtr fs, std::string path)
    : fs_(std::move(fs)), path_(std::move(path)) {
  update_cpu({});
  update_memory({});
  update_io({});
  set_procs({});
}

void CgroupWriter::update_cpu(const CgroupCpuStat& cpu) {
  std::string content = "usage_usec " + std::to_string(cpu.usage_usec) +
                        "\nuser_usec " + std::to_string(cpu.user_usec) +
                        "\nsystem_usec " + std::to_string(cpu.system_usec) +
                        "\n";
  fs_->write(path_ + "/cpu.stat", std::move(content));
}

void CgroupWriter::update_memory(const CgroupMemoryStat& memory) {
  fs_->write(path_ + "/memory.current",
             std::to_string(memory.current_bytes) + "\n");
  fs_->write(path_ + "/memory.peak", std::to_string(memory.peak_bytes) + "\n");
  fs_->write(path_ + "/memory.max",
             memory.max_bytes < 0 ? "max\n"
                                  : std::to_string(memory.max_bytes) + "\n");
  fs_->write(path_ + "/memory.stat",
             "anon " + std::to_string(memory.anon_bytes) + "\nfile " +
                 std::to_string(memory.file_bytes) + "\n");
}

void CgroupWriter::update_io(const CgroupIoStat& io) {
  fs_->write(path_ + "/io.stat",
             "8:0 rbytes=" + std::to_string(io.rbytes) +
                 " wbytes=" + std::to_string(io.wbytes) +
                 " rios=" + std::to_string(io.rios) +
                 " wios=" + std::to_string(io.wios) + "\n");
}

void CgroupWriter::set_procs(const std::vector<int64_t>& pids) {
  std::string content;
  for (int64_t pid : pids) content += std::to_string(pid) + "\n";
  fs_->write(path_ + "/cgroup.procs", std::move(content));
}

void CgroupWriter::destroy() { fs_->remove(path_); }

std::optional<CgroupStats> read_cgroup(const Fs& fs,
                                       const std::string& path) {
  auto cpu_content = fs.read(path + "/cpu.stat");
  if (!cpu_content) return std::nullopt;

  CgroupStats stats;
  auto cpu = parse_flat_keyed(*cpu_content);
  stats.cpu.usage_usec = cpu["usage_usec"];
  stats.cpu.user_usec = cpu["user_usec"];
  stats.cpu.system_usec = cpu["system_usec"];

  if (auto current = fs.read(path + "/memory.current")) {
    stats.memory.current_bytes =
        common::parse_int64(*current).value_or(0);
  }
  if (auto peak = fs.read(path + "/memory.peak")) {
    stats.memory.peak_bytes = common::parse_int64(*peak).value_or(0);
  }
  if (auto max = fs.read(path + "/memory.max")) {
    auto trimmed = common::trim(*max);
    stats.memory.max_bytes =
        trimmed == "max" ? -1 : common::parse_int64(trimmed).value_or(-1);
  }
  if (auto mem_stat = fs.read(path + "/memory.stat")) {
    auto keyed = parse_flat_keyed(*mem_stat);
    stats.memory.anon_bytes = keyed["anon"];
    stats.memory.file_bytes = keyed["file"];
  }
  if (auto io_stat = fs.read(path + "/io.stat")) {
    for (const auto& line : common::split(*io_stat, '\n')) {
      for (const auto& field : common::split_fields(line)) {
        std::size_t eq = field.find('=');
        if (eq == std::string::npos) continue;
        std::string key = field.substr(0, eq);
        int64_t value = common::parse_int64(field.substr(eq + 1)).value_or(0);
        if (key == "rbytes") stats.io.rbytes += value;
        else if (key == "wbytes") stats.io.wbytes += value;
        else if (key == "rios") stats.io.rios += value;
        else if (key == "wios") stats.io.wios += value;
      }
    }
  }
  if (auto procs = fs.read(path + "/cgroup.procs")) {
    for (const auto& line : common::split(*procs, '\n')) {
      if (auto pid = common::parse_int64(line)) stats.procs.push_back(*pid);
    }
  }
  return stats;
}

std::vector<std::string> list_child_cgroups(const Fs& fs,
                                            const std::string& scope) {
  std::vector<std::string> dirs;
  for (const auto& child : fs.list_dir(scope)) {
    if (fs.is_dir(scope + "/" + child)) dirs.push_back(child);
  }
  return dirs;
}

}  // namespace ceems::simfs
