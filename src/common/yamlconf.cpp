#include "common/yamlconf.h"

#include <vector>

#include "common/strutil.h"

namespace ceems::common {

namespace {

struct Line {
  int indent = 0;
  std::string content;  // trimmed, comment-stripped
  std::size_t number = 0;
};

// Strips a trailing comment that is not inside quotes.
std::string strip_comment(std::string_view text) {
  bool in_single = false, in_double = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    else if (c == '"' && !in_single) in_double = !in_double;
    else if (c == '#' && !in_single && !in_double &&
             (i == 0 || text[i - 1] == ' ' || text[i - 1] == '\t')) {
      return std::string(text.substr(0, i));
    }
  }
  return std::string(text);
}

Json parse_scalar(std::string_view text) {
  text = trim(text);
  if (text.empty() || text == "~" || text == "null") return Json(nullptr);
  if (text.size() >= 2 && ((text.front() == '"' && text.back() == '"') ||
                           (text.front() == '\'' && text.back() == '\''))) {
    return Json(std::string(text.substr(1, text.size() - 2)));
  }
  if (text == "true" || text == "yes") return Json(true);
  if (text == "false" || text == "no") return Json(false);
  if (auto i = parse_int64(text)) return Json(*i);
  if (auto d = parse_double(text)) return Json(*d);
  if (text.front() == '[' && text.back() == ']') {
    JsonArray items;
    std::string_view inner = text.substr(1, text.size() - 2);
    if (!trim(inner).empty()) {
      for (const auto& part : split(inner, ',')) {
        items.push_back(parse_scalar(part));
      }
    }
    return Json(std::move(items));
  }
  return Json(std::string(text));
}

class YamlParser {
 public:
  explicit YamlParser(std::string_view text) {
    std::size_t line_no = 0;
    for (const auto& raw : split(text, '\n')) {
      ++line_no;
      std::string stripped = strip_comment(raw);
      std::string_view sv = stripped;
      int indent = 0;
      while (static_cast<std::size_t>(indent) < sv.size() &&
             sv[static_cast<std::size_t>(indent)] == ' ')
        ++indent;
      std::string_view body = trim(sv);
      if (body.empty()) continue;
      if (!sv.empty() && sv[0] == '\t')
        throw YamlParseError("yaml: tabs are not allowed (line " +
                             std::to_string(line_no) + ")");
      lines_.push_back({indent, std::string(body), line_no});
    }
  }

  Json parse() {
    if (lines_.empty()) return Json::object();
    Json value = parse_block(0, lines_[0].indent);
    if (pos_ != lines_.size())
      throw YamlParseError("yaml: bad indentation at line " +
                           std::to_string(lines_[pos_].number));
    return value;
  }

 private:
  // Parses the block of lines starting at pos_ whose indent == `indent`.
  Json parse_block(std::size_t /*unused*/, int indent) {
    if (pos_ >= lines_.size()) return Json(nullptr);
    if (starts_with(lines_[pos_].content, "- ") || lines_[pos_].content == "-")
      return parse_list(indent);
    return parse_map(indent);
  }

  Json parse_list(int indent) {
    JsonArray items;
    while (pos_ < lines_.size() && lines_[pos_].indent == indent &&
           (starts_with(lines_[pos_].content, "- ") ||
            lines_[pos_].content == "-")) {
      const Line& line = lines_[pos_];
      std::string_view rest =
          line.content == "-" ? std::string_view{}
                              : trim(std::string_view(line.content).substr(2));
      if (rest.empty()) {
        // "- " alone: nested block follows with greater indent.
        ++pos_;
        if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
          items.push_back(parse_block(pos_, lines_[pos_].indent));
        } else {
          items.push_back(Json(nullptr));
        }
      } else if (rest.find(": ") != std::string_view::npos ||
                 ends_with(rest, ":")) {
        // "- key: value" starts an inline map whose remaining keys are
        // indented by indent + 2.
        ++pos_;
        JsonObject object;
        parse_map_entry(rest, indent + 2, object);
        while (pos_ < lines_.size() && lines_[pos_].indent == indent + 2 &&
               !starts_with(lines_[pos_].content, "- ")) {
          std::string content = lines_[pos_].content;
          ++pos_;
          parse_map_entry(content, indent + 2, object);
        }
        items.push_back(Json(std::move(object)));
      } else {
        items.push_back(parse_scalar(rest));
        ++pos_;
      }
    }
    return Json(std::move(items));
  }

  // Parses one "key: value" or "key:" entry; consumes nested blocks.
  void parse_map_entry(std::string_view content, int child_indent,
                       JsonObject& object) {
    std::size_t colon = find_key_colon(content);
    if (colon == std::string_view::npos)
      throw YamlParseError("yaml: expected 'key: value', got '" +
                           std::string(content) + "'");
    std::string key(trim(content.substr(0, colon)));
    if (key.size() >= 2 && ((key.front() == '"' && key.back() == '"') ||
                            (key.front() == '\'' && key.back() == '\''))) {
      key = key.substr(1, key.size() - 2);
    }
    std::string_view rest = trim(content.substr(colon + 1));
    if (!rest.empty()) {
      object[key] = parse_scalar(rest);
      return;
    }
    // Value is a nested block (or empty).
    if (pos_ < lines_.size() && lines_[pos_].indent >= child_indent) {
      object[key] = parse_block(pos_, lines_[pos_].indent);
    } else if (pos_ < lines_.size() && lines_[pos_].indent > 0 &&
               lines_[pos_].indent < child_indent &&
               starts_with(lines_[pos_].content, "- ")) {
      // Lists are commonly indented at the same level as the key.
      object[key] = parse_list(lines_[pos_].indent);
    } else {
      object[key] = Json(nullptr);
    }
  }

  Json parse_map(int indent) {
    JsonObject object;
    while (pos_ < lines_.size() && lines_[pos_].indent == indent &&
           !starts_with(lines_[pos_].content, "- ")) {
      std::string content = lines_[pos_].content;
      ++pos_;
      parse_map_entry(content, indent + 2, object);
    }
    return Json(std::move(object));
  }

  static std::size_t find_key_colon(std::string_view text) {
    bool in_single = false, in_double = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
      char c = text[i];
      if (c == '\'' && !in_double) in_single = !in_single;
      else if (c == '"' && !in_single) in_double = !in_double;
      else if (c == ':' && !in_single && !in_double &&
               (i + 1 == text.size() || text[i + 1] == ' '))
        return i;
    }
    return std::string_view::npos;
  }

  std::vector<Line> lines_;
  std::size_t pos_ = 0;
};

}  // namespace

Json parse_yaml(std::string_view text) { return YamlParser(text).parse(); }

}  // namespace ceems::common
