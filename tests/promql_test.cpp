#include <gtest/gtest.h>

#include <cmath>

#include "tsdb/promql_eval.h"

namespace ceems::tsdb::promql {
namespace {

using common::kMillisPerMinute;

class PromqlTest : public ::testing::Test {
 protected:
  void add(const Labels& labels, TimestampMs t, double v) {
    store_.append(labels, t, v);
  }
  Labels named(const std::string& name,
               std::initializer_list<Labels::Pair> pairs = {}) {
    return Labels(pairs).with_name(name);
  }
  Value eval(const std::string& expr, TimestampMs t) {
    return engine_.eval(store_, expr, t);
  }
  // Single-sample convenience.
  double eval1(const std::string& expr, TimestampMs t) {
    Value value = eval(expr, t);
    EXPECT_EQ(value.kind, Value::Kind::kVector) << expr;
    EXPECT_EQ(value.vector.size(), 1u) << expr;
    return value.vector.empty() ? std::nan("") : value.vector[0].value;
  }

  TimeSeriesStore store_;
  Engine engine_;
};

// ---------- parser ----------

TEST(Parser, PrecedenceAndAssociativity) {
  EXPECT_EQ(parse("1 + 2 * 3")->to_string(), "(1 + (2 * 3))");
  EXPECT_EQ(parse("1 * 2 + 3")->to_string(), "((1 * 2) + 3)");
  EXPECT_EQ(parse("2 ^ 3 ^ 2")->to_string(), "(2 ^ (3 ^ 2))");
  EXPECT_EQ(parse("-1 + 2")->to_string(), "(-1 + 2)");
}

TEST(Parser, SelectorsWithMatchersRangeOffset) {
  ExprPtr expr = parse("up{job=\"x\",mode!=\"idle\"}[5m] offset 1h");
  EXPECT_EQ(expr->kind, Expr::Kind::kMatrixSelector);
  EXPECT_EQ(expr->metric_name, "up");
  ASSERT_EQ(expr->matchers.size(), 2u);
  EXPECT_EQ(expr->matchers[1].op, metrics::LabelMatcher::Op::kNe);
  EXPECT_EQ(expr->range_ms, 5 * kMillisPerMinute);
  EXPECT_EQ(expr->offset_ms, 60 * kMillisPerMinute);
}

TEST(Parser, AggregateBothClausePositions) {
  ExprPtr leading = parse("sum by (host) (up)");
  EXPECT_TRUE(leading->agg_by);
  ASSERT_EQ(leading->grouping.size(), 1u);
  ExprPtr trailing = parse("sum(up) by (host)");
  EXPECT_EQ(trailing->grouping, leading->grouping);
  ExprPtr without = parse("sum without (host) (up)");
  EXPECT_FALSE(without->agg_by);
  EXPECT_TRUE(without->agg_grouped);
}

TEST(Parser, VectorMatchingClauses) {
  ExprPtr expr = parse("a / on(host) group_left() b");
  EXPECT_TRUE(expr->matching.is_on);
  EXPECT_EQ(expr->matching.group, VectorMatching::Group::kLeft);
  ExprPtr ignoring = parse("a * ignoring(mode) b");
  EXPECT_FALSE(ignoring->matching.is_on);
  ASSERT_EQ(ignoring->matching.labels.size(), 1u);
}

TEST(Parser, ColonsInRecordNames) {
  ExprPtr expr = parse("instance:cpu_busy_rate{nodegroup=\"intel-cpu\"}");
  EXPECT_EQ(expr->metric_name, "instance:cpu_busy_rate");
}

TEST(Parser, ErrorsThrow) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("sum("), ParseError);
  EXPECT_THROW(parse("up{job=}"), ParseError);
  EXPECT_THROW(parse("up[5m"), ParseError);
  EXPECT_THROW(parse("1 +"), ParseError);
  EXPECT_THROW(parse("(1"), ParseError);
  EXPECT_THROW(parse("up @ 5"), ParseError);
}

// ---------- selectors & lookback ----------

TEST_F(PromqlTest, InstantSelectorUsesLatestWithinLookback) {
  add(named("up", {{"h", "a"}}), 1000, 1);
  add(named("up", {{"h", "a"}}), 61000, 0);
  EXPECT_DOUBLE_EQ(eval1("up", 61000), 0);
  EXPECT_DOUBLE_EQ(eval1("up", 60000), 1);
  // Beyond the 5m lookback: empty vector.
  Value stale = eval("up", 61000 + 5 * kMillisPerMinute + 1);
  EXPECT_TRUE(stale.vector.empty());
}

TEST_F(PromqlTest, OffsetShiftsEvaluationTime) {
  add(named("m"), 10000, 5);
  add(named("m"), 70000, 9);
  EXPECT_DOUBLE_EQ(eval1("m offset 1m", 70000), 5);
}

TEST_F(PromqlTest, NamelessSelectorMatchesByLabel) {
  add(named("a", {{"uuid", "7"}}), 1000, 1);
  add(named("b", {{"uuid", "7"}}), 1000, 2);
  Value value = eval("{uuid=\"7\"}", 1000);
  EXPECT_EQ(value.vector.size(), 2u);
}

// ---------- range functions ----------

TEST_F(PromqlTest, RateOverCounter) {
  // 10 J/s counter sampled every 30 s.
  for (int i = 0; i <= 4; ++i) {
    add(named("joules_total"), i * 30000, i * 300.0);
  }
  EXPECT_NEAR(eval1("rate(joules_total[2m])", 120000), 10.0, 1e-9);
  // Left-open window (t-2m, t] holds the samples at 30..120 s: the
  // observed counter delta is 900 J (no boundary extrapolation — see the
  // documented deviation in promql_eval.h).
  EXPECT_NEAR(eval1("increase(joules_total[2m])", 120000), 900.0, 1e-9);
}

TEST_F(PromqlTest, RateHandlesCounterReset) {
  add(named("c"), 0, 100);
  add(named("c"), 30000, 200);
  add(named("c"), 60000, 50);  // reset
  add(named("c"), 90000, 150);
  // increase = 100 + 50 (post-reset absolute) + 100 = 250 over 90 s.
  EXPECT_NEAR(eval1("increase(c[2m])", 90000), 250.0, 1e-9);
  EXPECT_NEAR(eval1("resets(c[2m])", 90000), 1.0, 1e-9);
}

TEST_F(PromqlTest, OverTimeFunctions) {
  for (int i = 1; i <= 4; ++i) {
    add(named("g"), i * 10000, i * 1.0);  // 1,2,3,4
  }
  EXPECT_DOUBLE_EQ(eval1("avg_over_time(g[1m])", 40000), 2.5);
  EXPECT_DOUBLE_EQ(eval1("sum_over_time(g[1m])", 40000), 10.0);
  EXPECT_DOUBLE_EQ(eval1("min_over_time(g[1m])", 40000), 1.0);
  EXPECT_DOUBLE_EQ(eval1("max_over_time(g[1m])", 40000), 4.0);
  EXPECT_DOUBLE_EQ(eval1("count_over_time(g[1m])", 40000), 4.0);
  EXPECT_DOUBLE_EQ(eval1("last_over_time(g[1m])", 40000), 4.0);
  EXPECT_DOUBLE_EQ(eval1("delta(g[1m])", 40000), 3.0);
  EXPECT_NEAR(eval1("deriv(g[1m])", 40000), 0.1, 1e-12);  // 3 over 30 s
}

TEST_F(PromqlTest, IrateUsesLastTwoSamples) {
  add(named("c"), 0, 0);
  add(named("c"), 30000, 300);
  add(named("c"), 60000, 1200);  // 30 J/s over the last 30 s
  EXPECT_NEAR(eval1("irate(c[2m])", 60000), 30.0, 1e-9);
}

TEST_F(PromqlTest, RangeIsLeftOpen) {
  add(named("c"), 0, 0);
  add(named("c"), 60000, 60);
  // [1m] at t=60000 covers (0, 60000]; only one sample → no rate.
  Value value = eval("rate(c[1m])", 60000);
  EXPECT_TRUE(value.vector.empty());
}

// ---------- binary operators ----------

TEST_F(PromqlTest, VectorScalarArithmetic) {
  add(named("m", {{"h", "a"}}), 1000, 10);
  EXPECT_DOUBLE_EQ(eval1("m * 3 + 1", 1000), 31);
  EXPECT_DOUBLE_EQ(eval1("100 / m", 1000), 10);
  EXPECT_DOUBLE_EQ(eval1("-m", 1000), -10);
  Value scalar = eval("2 ^ 10", 1000);
  EXPECT_EQ(scalar.kind, Value::Kind::kScalar);
  EXPECT_DOUBLE_EQ(scalar.scalar, 1024);
}

TEST_F(PromqlTest, OneToOneMatchingOnIdenticalLabels) {
  add(named("a", {{"h", "x"}}), 1000, 10);
  add(named("a", {{"h", "y"}}), 1000, 20);
  add(named("b", {{"h", "x"}}), 1000, 2);
  add(named("b", {{"h", "y"}}), 1000, 4);
  Value value = eval("a / b", 1000);
  ASSERT_EQ(value.vector.size(), 2u);
  for (const auto& sample : value.vector) {
    EXPECT_DOUBLE_EQ(sample.value, 5);
    EXPECT_FALSE(sample.labels.has("__name__"));
  }
}

TEST_F(PromqlTest, GroupLeftManyToOne) {
  add(named("job_cpu", {{"h", "x"}, {"uuid", "1"}}), 1000, 30);
  add(named("job_cpu", {{"h", "x"}, {"uuid", "2"}}), 1000, 10);
  add(named("node_cpu", {{"h", "x"}}), 1000, 40);
  Value value = eval("job_cpu / on(h) group_left() node_cpu", 1000);
  ASSERT_EQ(value.vector.size(), 2u);
  double total = 0;
  for (const auto& sample : value.vector) {
    EXPECT_TRUE(sample.labels.has("uuid"));  // many-side labels kept
    total += sample.value;
  }
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST_F(PromqlTest, GroupRightSwapsRoles) {
  add(named("one", {{"h", "x"}}), 1000, 100);
  add(named("many", {{"h", "x"}, {"uuid", "1"}}), 1000, 25);
  Value value = eval("one * on(h) group_right() many", 1000);
  ASSERT_EQ(value.vector.size(), 1u);
  EXPECT_DOUBLE_EQ(value.vector[0].value, 2500);
  EXPECT_TRUE(value.vector[0].labels.has("uuid"));
}

TEST_F(PromqlTest, GroupLeftIncludeCopiesLabels) {
  add(named("flag", {{"h", "x"}, {"uuid", "1"}, {"gpu_uuid", "G-0"}}), 1000, 1);
  add(named("power", {{"h", "x"}, {"gpu_uuid", "G-0"}, {"model", "V100"}}),
      1000, 250);
  Value value =
      eval("flag * on(h, gpu_uuid) group_left(model) power", 1000);
  ASSERT_EQ(value.vector.size(), 1u);
  EXPECT_EQ(*value.vector[0].labels.get("model"), "V100");
  EXPECT_DOUBLE_EQ(value.vector[0].value, 250);
}

TEST_F(PromqlTest, ManyToManyThrows) {
  add(named("a", {{"h", "x"}, {"i", "1"}}), 1000, 1);
  add(named("b", {{"h", "x"}, {"j", "1"}}), 1000, 1);
  add(named("b", {{"h", "x"}, {"j", "2"}}), 1000, 1);
  EXPECT_THROW(eval("a * on(h) group_left() b", 1000), EvalError);
}

TEST_F(PromqlTest, ComparisonFilterAndBool) {
  add(named("v", {{"h", "a"}}), 1000, 5);
  add(named("v", {{"h", "b"}}), 1000, 15);
  Value filtered = eval("v > 10", 1000);
  ASSERT_EQ(filtered.vector.size(), 1u);
  EXPECT_DOUBLE_EQ(filtered.vector[0].value, 15);  // original value kept
  EXPECT_EQ(filtered.vector[0].labels.name(), "v");

  Value boolean = eval("v > bool 10", 1000);
  ASSERT_EQ(boolean.vector.size(), 2u);
  EXPECT_DOUBLE_EQ(boolean.vector[0].value + boolean.vector[1].value, 1);
}

TEST_F(PromqlTest, SetOperators) {
  add(named("a", {{"h", "x"}}), 1000, 1);
  add(named("a", {{"h", "y"}}), 1000, 2);
  add(named("b", {{"h", "y"}}), 1000, 3);
  add(named("b", {{"h", "z"}}), 1000, 4);
  EXPECT_EQ(eval("a and on(h) b", 1000).vector.size(), 1u);
  EXPECT_EQ(eval("a or on(h) b", 1000).vector.size(), 3u);
  Value unless = eval("a unless on(h) b", 1000);
  ASSERT_EQ(unless.vector.size(), 1u);
  EXPECT_EQ(*unless.vector[0].labels.get("h"), "x");
}

TEST_F(PromqlTest, DivisionByZeroVector) {
  add(named("num", {{"h", "x"}}), 1000, 5);
  add(named("den", {{"h", "x"}}), 1000, 0);
  Value value = eval("num / den", 1000);
  ASSERT_EQ(value.vector.size(), 1u);
  EXPECT_TRUE(std::isinf(value.vector[0].value));
}

// ---------- aggregations ----------

TEST_F(PromqlTest, SumByGroups) {
  add(named("m", {{"h", "a"}, {"mode", "user"}}), 1000, 1);
  add(named("m", {{"h", "a"}, {"mode", "sys"}}), 1000, 2);
  add(named("m", {{"h", "b"}, {"mode", "user"}}), 1000, 4);
  Value value = eval("sum by (h) (m)", 1000);
  ASSERT_EQ(value.vector.size(), 2u);
  EXPECT_DOUBLE_EQ(value.vector[0].value, 3);  // h=a sorted first
  EXPECT_DOUBLE_EQ(value.vector[1].value, 4);
  EXPECT_EQ(value.vector[0].labels.size(), 1u);
}

TEST_F(PromqlTest, SumWithoutDropsLabels) {
  add(named("m", {{"h", "a"}, {"mode", "user"}}), 1000, 1);
  add(named("m", {{"h", "a"}, {"mode", "sys"}}), 1000, 2);
  Value value = eval("sum without (mode) (m)", 1000);
  ASSERT_EQ(value.vector.size(), 1u);
  EXPECT_DOUBLE_EQ(value.vector[0].value, 3);
  EXPECT_TRUE(value.vector[0].labels.has("h"));
  EXPECT_FALSE(value.vector[0].labels.has("__name__"));
}

TEST_F(PromqlTest, GlobalAggregations) {
  for (int i = 1; i <= 4; ++i) {
    add(named("m", {{"i", std::to_string(i)}}), 1000, i);
  }
  EXPECT_DOUBLE_EQ(eval1("sum(m)", 1000), 10);
  EXPECT_DOUBLE_EQ(eval1("avg(m)", 1000), 2.5);
  EXPECT_DOUBLE_EQ(eval1("min(m)", 1000), 1);
  EXPECT_DOUBLE_EQ(eval1("max(m)", 1000), 4);
  EXPECT_DOUBLE_EQ(eval1("count(m)", 1000), 4);
  EXPECT_NEAR(eval1("stddev(m)", 1000), std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(eval1("quantile(0.5, m)", 1000), 2.5);
}

TEST_F(PromqlTest, TopkBottomk) {
  for (int i = 1; i <= 5; ++i) {
    add(named("m", {{"i", std::to_string(i)}}), 1000, i);
  }
  Value top = eval("topk(2, m)", 1000);
  ASSERT_EQ(top.vector.size(), 2u);
  EXPECT_DOUBLE_EQ(top.vector[0].value + top.vector[1].value, 9);
  Value bottom = eval("bottomk(1, m)", 1000);
  ASSERT_EQ(bottom.vector.size(), 1u);
  EXPECT_DOUBLE_EQ(bottom.vector[0].value, 1);
}

// ---------- functions ----------

TEST_F(PromqlTest, MathAndClamp) {
  add(named("m"), 1000, -2.7);
  EXPECT_DOUBLE_EQ(eval1("abs(m)", 1000), 2.7);
  EXPECT_DOUBLE_EQ(eval1("ceil(m)", 1000), -2);
  EXPECT_DOUBLE_EQ(eval1("floor(m)", 1000), -3);
  EXPECT_DOUBLE_EQ(eval1("clamp_min(m, 0)", 1000), 0);
  EXPECT_DOUBLE_EQ(eval1("clamp_max(m, -5)", 1000), -5);
  EXPECT_DOUBLE_EQ(eval1("clamp(m, -1, 1)", 1000), -1);
}

TEST_F(PromqlTest, LabelReplace) {
  add(named("power", {{"UUID", "GPU-abc"}}), 1000, 200);
  Value value = eval(
      "label_replace(power, \"gpu_uuid\", \"$1\", \"UUID\", \"(.+)\")",
      1000);
  ASSERT_EQ(value.vector.size(), 1u);
  EXPECT_EQ(*value.vector[0].labels.get("gpu_uuid"), "GPU-abc");
}

TEST_F(PromqlTest, VectorScalarTimeAbsent) {
  EXPECT_EQ(eval("vector(42)", 1000).vector.size(), 1u);
  add(named("single"), 1000, 7);
  Value scalar = eval("scalar(single)", 1000);
  EXPECT_EQ(scalar.kind, Value::Kind::kScalar);
  EXPECT_DOUBLE_EQ(scalar.scalar, 7);
  Value time_value = eval("time()", 9000);
  EXPECT_DOUBLE_EQ(time_value.scalar, 9);
  EXPECT_EQ(eval("absent(nothing_here)", 1000).vector.size(), 1u);
  EXPECT_TRUE(eval("absent(single)", 1000).vector.empty());
}

TEST_F(PromqlTest, SortAndSortDesc) {
  for (int i = 1; i <= 3; ++i) {
    add(named("m", {{"i", std::to_string(i)}}), 1000, 4.0 - i);  // 3,2,1
  }
  Value ascending = eval("sort(m)", 1000);
  ASSERT_EQ(ascending.vector.size(), 3u);
  EXPECT_DOUBLE_EQ(ascending.vector[0].value, 1);
  EXPECT_DOUBLE_EQ(ascending.vector[2].value, 3);
  Value descending = eval("sort_desc(m)", 1000);
  EXPECT_DOUBLE_EQ(descending.vector[0].value, 3);
}

TEST_F(PromqlTest, RoundToNearest) {
  add(named("m"), 1000, 123.456);
  EXPECT_DOUBLE_EQ(eval1("round(m)", 1000), 123);
  EXPECT_DOUBLE_EQ(eval1("round(m, 10)", 1000), 120);
  EXPECT_DOUBLE_EQ(eval1("round(m, 0.1)", 1000), 123.5);
  EXPECT_THROW(eval("round(m, 0)", 1000), EvalError);
}

TEST_F(PromqlTest, PredictLinearExtrapolates) {
  // Counter growing 2/s: predict 100 s ahead.
  for (int i = 0; i <= 4; ++i) {
    add(named("c"), i * 30000, i * 60.0);
  }
  double predicted = eval1("predict_linear(c[2m], 100)", 120000);
  // Value now = 240, slope 2/s → 240 + 200 = 440.
  EXPECT_NEAR(predicted, 440.0, 1.0);
}

TEST_F(PromqlTest, CalendarFunctions) {
  // 2023-11-14 22:13:20 UTC = 1700000000.
  common::TimestampMs t = 1700000000000LL;
  add(named("m"), t, 1);
  EXPECT_DOUBLE_EQ(eval1("hour()", t), 22);
  EXPECT_DOUBLE_EQ(eval1("day_of_week()", t), 2);  // Tuesday
  EXPECT_DOUBLE_EQ(eval1("day_of_month()", t), 14);
  EXPECT_DOUBLE_EQ(eval1("month()", t), 11);
  // With an explicit timestamp vector argument.
  EXPECT_DOUBLE_EQ(eval1("hour(vector(1700000000))", t), 22);
}

TEST_F(PromqlTest, DerivIsLeastSquares) {
  // Noisy-but-linear gauge: least squares recovers the slope better than
  // endpoints. Points: 0, 12, 18, 30 at 10 s spacing (slope ~1/s).
  add(named("g"), 10000, 0);
  add(named("g"), 20000, 12);
  add(named("g"), 30000, 18);
  add(named("g"), 40000, 30);
  EXPECT_NEAR(eval1("deriv(g[1m])", 40000), 0.96, 0.05);
}

TEST_F(PromqlTest, UnknownFunctionThrows) {
  EXPECT_THROW(eval("frobnicate(up)", 1000), EvalError);
  add(named("m"), 1000, 1);
  EXPECT_THROW(eval("rate(m)", 1000), EvalError);  // needs range vector
}

// ---------- range queries ----------

TEST_F(PromqlTest, RangeQueryProducesSteps) {
  for (int i = 0; i <= 10; ++i) {
    add(named("g"), i * 10000, i);
  }
  auto matrix = engine_.eval_range(store_, "g * 2", 0, 100000, 20000);
  ASSERT_EQ(matrix.size(), 1u);
  ASSERT_EQ(matrix[0].samples.size(), 6u);
  EXPECT_DOUBLE_EQ(matrix[0].samples[5].v, 20);
}

TEST_F(PromqlTest, EquationOneShapeEndToEnd) {
  // A miniature Eq. (1): two jobs on one host, CPU-time proportional split.
  TimestampMs t = 120000;
  for (int i = 0; i <= 4; ++i) {
    TimestampMs ts = i * 30000;
    add(named("ceems_rapl_package_joules_total", {{"hostname", "n"}}), ts,
        i * 30.0 * 100);  // 100 W
    add(named("ceems_rapl_dram_joules_total", {{"hostname", "n"}}), ts,
        i * 30.0 * 25);  // 25 W
    add(named("node_cpu_seconds_total", {{"hostname", "n"}, {"mode", "user"}}),
        ts, i * 30.0 * 8);  // 8 busy cores
    add(named("ceems_compute_unit_cpu_usage_seconds_total",
              {{"hostname", "n"}, {"uuid", "1"}, {"mode", "user"}}),
        ts, i * 30.0 * 6);  // job 1: 6 cores
    add(named("ceems_compute_unit_cpu_usage_seconds_total",
              {{"hostname", "n"}, {"uuid", "2"}, {"mode", "user"}}),
        ts, i * 30.0 * 2);  // job 2: 2 cores
    add(named("ceems_ipmi_dcmi_current_watts", {{"hostname", "n"}}), ts, 400);
  }
  std::string expr =
      "0.9 * on(hostname) group_left() ("
      "  sum by (hostname) (ceems_ipmi_dcmi_current_watts)"
      "  * (sum by (hostname) (rate(ceems_rapl_package_joules_total[2m]))"
      "     / (sum by (hostname) (rate(ceems_rapl_package_joules_total[2m]))"
      "        + sum by (hostname) (rate(ceems_rapl_dram_joules_total[2m]))))"
      ") "
      "* (sum by (hostname, uuid) "
      "     (rate(ceems_compute_unit_cpu_usage_seconds_total[2m]))"
      "   / on(hostname) group_left() "
      "     sum by (hostname) (rate(node_cpu_seconds_total[2m])))";
  // Hmm: leading scalar times group_left vector: rewrite as vector first.
  std::string job_share =
      "sum by (hostname, uuid) "
      "(rate(ceems_compute_unit_cpu_usage_seconds_total[2m]))"
      " / on(hostname) group_left() "
      "sum by (hostname) (rate(node_cpu_seconds_total[2m]))";
  std::string cpu_budget =
      "0.9 * sum by (hostname) (ceems_ipmi_dcmi_current_watts)"
      " * (sum by (hostname) (rate(ceems_rapl_package_joules_total[2m]))"
      " / (sum by (hostname) (rate(ceems_rapl_package_joules_total[2m]))"
      " + sum by (hostname) (rate(ceems_rapl_dram_joules_total[2m]))))";
  Value value =
      eval("(" + job_share + ") * on(hostname) group_left() (" + cpu_budget +
               ")",
           t);
  (void)expr;
  ASSERT_EQ(value.vector.size(), 2u);
  // Budget = 0.9×400×(100/125) = 288 W; job1 = 6/8 → 216 W, job2 = 72 W.
  double job1 = 0, job2 = 0;
  for (const auto& sample : value.vector) {
    if (*sample.labels.get("uuid") == "1") job1 = sample.value;
    else job2 = sample.value;
  }
  EXPECT_NEAR(job1, 216.0, 0.5);
  EXPECT_NEAR(job2, 72.0, 0.5);
}

}  // namespace
}  // namespace ceems::tsdb::promql
