#include "dashboard/ceems_dashboards.h"

#include <cstdio>

namespace ceems::dashboard {

using common::Json;

std::string render_user_aggregate_dashboard(GrafanaClient& client,
                                            common::TimestampMs from_ms,
                                            common::TimestampMs to_ms) {
  auto body = client.api_get("/api/v1/usage?scope=user&from=" +
                             std::to_string(from_ms) + "&to=" +
                             std::to_string(to_ms));
  if (!body) return "(usage unavailable)\n";

  for (const auto& row : body->at("data").as_array()) {
    if (row.get_string("user") != client.user()) continue;
    char pct[16];
    std::vector<Stat> stats;
    std::snprintf(pct, sizeof(pct), "%.1f %%",
                  row.get_number("avg_cpu_usage") * 100.0);
    stats.push_back({"Avg CPU usage", pct});
    std::snprintf(pct, sizeof(pct), "%.1f %%",
                  row.get_number("avg_gpu_usage") * 100.0);
    stats.push_back({"Avg GPU usage", pct});
    stats.push_back(
        {"Avg CPU memory", format_bytes(row.get_number("avg_cpu_mem_bytes"))});
    stats.push_back(
        {"Total energy", format_joules(row.get_number("total_energy_joules"))});
    stats.push_back({"Total emissions",
                     format_co2(row.get_number("total_emissions_grams"))});
    stats.push_back({"Compute units",
                     std::to_string(row.get_int("num_units"))});
    return render_stats("Aggregate usage of " + client.user(), stats);
  }
  return "(no usage recorded for " + client.user() + ")\n";
}

std::string render_user_job_list(GrafanaClient& client,
                                 common::TimestampMs from_ms,
                                 common::TimestampMs to_ms,
                                 std::size_t limit) {
  auto body = client.api_get(
      "/api/v1/units?from=" + std::to_string(from_ms) + "&to=" +
      std::to_string(to_ms) + "&limit=" + std::to_string(limit));
  if (!body) return "(units unavailable)\n";

  std::vector<std::vector<std::string>> rows;
  char buf[32];
  for (const auto& unit : body->at("data").as_array()) {
    std::snprintf(buf, sizeof(buf), "%.1f %%",
                  unit.get_number("avg_cpu_usage") * 100.0);
    rows.push_back({
        unit.get_string("uuid"),
        unit.get_string("name"),
        unit.get_string("partition"),
        unit.get_string("state"),
        format_duration(unit.get_int("elapsed_ms")),
        buf,
        format_bytes(unit.get_number("avg_cpu_mem_bytes")),
        format_joules(unit.get_number("total_energy_joules")),
        format_co2(unit.get_number("total_emissions_grams")),
    });
  }
  return render_table(
      "Compute units of " + client.user(),
      {"JobID", "Name", "Partition", "State", "Elapsed", "CPU", "Memory",
       "Energy", "Emissions"},
      rows);
}

std::string render_job_timeseries(GrafanaClient& client,
                                  const std::string& uuid,
                                  common::TimestampMs from_ms,
                                  common::TimestampMs to_ms, int64_t step_ms) {
  auto cpu = client.range_query(
      "sum(rate(ceems_compute_unit_cpu_usage_seconds_total{uuid=\"" + uuid +
          "\"}[2m]))",
      from_ms, to_ms, step_ms);
  auto mem = client.range_query(
      "sum(ceems_compute_unit_memory_current_bytes{uuid=\"" + uuid + "\"})",
      from_ms, to_ms, step_ms);
  auto power = client.range_query(
      "sum(ceems_job_power_watts{uuid=\"" + uuid + "\"})", from_ms, to_ms,
      step_ms);

  std::string out;
  if (!cpu.ok) {
    return "(query denied or failed: " + cpu.error + ")\n";
  }
  std::vector<ChartSeries> cpu_chart;
  for (const auto& series : cpu.range)
    cpu_chart.push_back({"CPU cores used", series.points});
  out += render_chart("Job " + uuid + " — CPU usage (cores)", cpu_chart);
  if (mem.ok) {
    std::vector<ChartSeries> mem_chart;
    for (const auto& series : mem.range)
      mem_chart.push_back({"resident bytes", series.points});
    out += render_chart("Job " + uuid + " — memory", mem_chart);
  }
  if (power.ok && !power.range.empty()) {
    std::vector<ChartSeries> power_chart;
    for (const auto& series : power.range)
      power_chart.push_back({"estimated watts", series.points});
    out += render_chart("Job " + uuid + " — estimated power (W)", power_chart);
  }
  return out;
}

}  // namespace ceems::dashboard
