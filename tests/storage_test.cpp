#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "tsdb/storage.h"

namespace ceems::tsdb {
namespace {

Labels series_labels(const std::string& name, const std::string& host) {
  return Labels{{"hostname", host}}.with_name(name);
}

TEST(Storage, AppendAndSelect) {
  TimeSeriesStore store;
  store.append(series_labels("up", "n1"), 1000, 1);
  store.append(series_labels("up", "n1"), 2000, 0);
  store.append(series_labels("up", "n2"), 1000, 1);

  auto all = store.select(
      {{"__name__", LabelMatcher::Op::kEq, "up"}}, 0, 10000);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].samples.size(), 2u);

  auto one = store.select({{"__name__", LabelMatcher::Op::kEq, "up"},
                           {"hostname", LabelMatcher::Op::kEq, "n2"}},
                          0, 10000);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(*one[0].labels.get("hostname"), "n2");
}

TEST(Storage, TimeRangeFiltering) {
  TimeSeriesStore store;
  for (int i = 0; i < 10; ++i) {
    store.append(series_labels("m", "n1"), i * 1000, i);
  }
  auto result = store.select({}, 3000, 6000);
  ASSERT_EQ(result.size(), 1u);
  ASSERT_EQ(result[0].samples.size(), 4u);  // 3,4,5,6 inclusive
  EXPECT_EQ(result[0].samples.front().t, 3000);
  EXPECT_EQ(result[0].samples.back().t, 6000);
}

TEST(Storage, OutOfOrderRejected) {
  TimeSeriesStore store;
  EXPECT_TRUE(store.append(series_labels("m", "n1"), 2000, 1));
  EXPECT_FALSE(store.append(series_labels("m", "n1"), 1000, 2));
  EXPECT_EQ(store.stats().num_samples, 1u);
}

TEST(Storage, DuplicateTimestampLastWins) {
  TimeSeriesStore store;
  store.append(series_labels("m", "n1"), 1000, 1);
  store.append(series_labels("m", "n1"), 1000, 9);
  auto result = store.select({}, 0, 2000);
  EXPECT_DOUBLE_EQ(result[0].samples[0].v, 9);
  EXPECT_EQ(store.stats().num_samples, 1u);
}

TEST(Storage, NegativeMatcherNeedsFullScan) {
  TimeSeriesStore store;
  store.append(series_labels("m", "n1"), 1000, 1);
  store.append(series_labels("m", "n2"), 1000, 2);
  auto result = store.select({{"hostname", LabelMatcher::Op::kNe, "n1"}},
                             0, 2000);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(*result[0].labels.get("hostname"), "n2");
}

TEST(Storage, RegexMatcher) {
  TimeSeriesStore store;
  store.append(series_labels("m", "jzcpu1"), 1000, 1);
  store.append(series_labels("m", "jzgpu1"), 1000, 2);
  auto result = store.select(
      {{"hostname", LabelMatcher::Op::kRegexMatch, "jzcpu\\d+"}}, 0, 2000);
  ASSERT_EQ(result.size(), 1u);
}

TEST(Storage, PurgeBeforeDropsSamplesAndEmptySeries) {
  TimeSeriesStore store;
  for (int i = 0; i < 10; ++i) {
    store.append(series_labels("old", "n1"), i * 1000, i);
  }
  store.append(series_labels("fresh", "n1"), 20000, 1);
  std::size_t dropped = store.purge_before(15000);
  EXPECT_EQ(dropped, 10u);
  EXPECT_EQ(store.stats().num_series, 1u);
  // Purged series no longer matches.
  EXPECT_TRUE(store.select({{"__name__", LabelMatcher::Op::kEq, "old"}}, 0,
                           30000)
                  .empty());
}

TEST(Storage, DeleteSeriesByMatcher) {
  TimeSeriesStore store;
  store.append(Labels{{"uuid", "1"}}.with_name("m"), 1000, 1);
  store.append(Labels{{"uuid", "2"}}.with_name("m"), 1000, 1);
  store.append(Labels{{"uuid", "1"}}.with_name("n"), 1000, 1);
  std::size_t deleted =
      store.delete_series({{"uuid", LabelMatcher::Op::kEq, "1"}});
  EXPECT_EQ(deleted, 2u);
  EXPECT_EQ(store.stats().num_series, 1u);
}

TEST(Storage, LabelValues) {
  TimeSeriesStore store;
  store.append(series_labels("m", "n2"), 1000, 1);
  store.append(series_labels("m", "n1"), 1000, 1);
  auto values = store.label_values("hostname");
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], "n1");  // sorted
  EXPECT_TRUE(store.label_values("nope").empty());
}

TEST(Storage, SeriesSinceForReplication) {
  TimeSeriesStore store;
  store.append(series_labels("m", "n1"), 1000, 1);
  store.append(series_labels("m", "n1"), 2000, 2);
  store.append(series_labels("m", "n2"), 3000, 3);
  auto fresh = store.series_since(1500);
  std::size_t samples = 0;
  for (const auto& series : fresh) samples += series.samples.size();
  EXPECT_EQ(samples, 2u);
  EXPECT_EQ(store.max_time(), 3000);
}

TEST(Storage, EmptyStoreBehaviour) {
  TimeSeriesStore store;
  EXPECT_TRUE(store.select({}, 0, 1000).empty());
  EXPECT_FALSE(store.max_time().has_value());
  EXPECT_EQ(store.purge_before(100), 0u);
  EXPECT_EQ(store.stats().num_series, 0u);
}

TEST(Storage, SnapshotRoundTrip) {
  std::string path = ::testing::TempDir() + "tsdb_snapshot_test.bin";
  TimeSeriesStore store;
  for (int s = 0; s < 20; ++s) {
    Labels labels = Labels{{"uuid", std::to_string(s)},
                           {"hostname", "n" + std::to_string(s % 3)}}
                        .with_name("m");
    for (int i = 0; i < 50; ++i) {
      store.append(labels, i * 30000, s * 1000.0 + i);
    }
  }
  ASSERT_TRUE(store.snapshot_to(path));

  TimeSeriesStore restored;
  auto count = restored.restore_from(path);
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 20u * 50u);
  EXPECT_EQ(restored.stats().num_series, store.stats().num_series);
  auto original = store.select({}, 0, 50 * 30000);
  auto copy = restored.select({}, 0, 50 * 30000);
  ASSERT_EQ(original.size(), copy.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i].labels, copy[i].labels);
    ASSERT_EQ(original[i].samples.size(), copy[i].samples.size());
    EXPECT_DOUBLE_EQ(original[i].samples.back().v, copy[i].samples.back().v);
  }
  std::remove(path.c_str());
}

TEST(Storage, SnapshotRestoreRejectsCorruptFile) {
  std::string path = ::testing::TempDir() + "tsdb_snapshot_corrupt.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTASNAPSHOT garbage";
  }
  TimeSeriesStore store;
  EXPECT_FALSE(store.restore_from(path).has_value());
  EXPECT_FALSE(store.restore_from("/nonexistent/file").has_value());

  // Truncated valid snapshot: clean abort, no crash.
  TimeSeriesStore source;
  source.append(Labels{{"a", "b"}}.with_name("m"), 1000, 1);
  source.snapshot_to(path);
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size() - 6));
  out.close();
  TimeSeriesStore truncated;
  EXPECT_FALSE(truncated.restore_from(path).has_value());
  std::remove(path.c_str());
}

TEST(Storage, StatsTrackCardinality) {
  TimeSeriesStore store;
  for (int s = 0; s < 100; ++s) {
    Labels labels = Labels{{"uuid", std::to_string(s)}}.with_name("m");
    for (int i = 0; i < 10; ++i) store.append(labels, i * 1000, i);
  }
  StorageStats stats = store.stats();
  EXPECT_EQ(stats.num_series, 100u);
  EXPECT_EQ(stats.num_samples, 1000u);
  EXPECT_GT(stats.approx_bytes, 1000u * sizeof(SamplePoint));
}

}  // namespace
}  // namespace ceems::tsdb
