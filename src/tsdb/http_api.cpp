#include "tsdb/http_api.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/strutil.h"

namespace ceems::tsdb {

using common::Json;
using common::JsonArray;
using common::JsonObject;

namespace {

Json labels_to_json(const Labels& labels) {
  JsonObject object;
  for (const auto& [name, value] : labels.pairs()) {
    object[name] = Json(value);
  }
  return Json(std::move(object));
}

Json sample_pair(common::TimestampMs t, double v) {
  JsonArray pair;
  pair.push_back(Json(static_cast<double>(t) / 1000.0));
  pair.push_back(Json(common::format_double(v)));
  return Json(std::move(pair));
}

Json error_body(const std::string& error) {
  JsonObject object;
  object["status"] = Json("error");
  object["error"] = Json(error);
  return Json(std::move(object));
}

Json success_body(Json data) {
  JsonObject object;
  object["status"] = Json("success");
  object["data"] = std::move(data);
  return Json(std::move(object));
}

// One process-wide evaluation pool shared by every PromApi frontend (the
// stack runs several Thanos-style query backends in one process; a shared
// pool keeps the thread count bounded). run_all() waits on its own tasks
// only, so concurrent range queries interleave safely on it.
std::shared_ptr<common::ThreadPool> query_eval_pool() {
  static std::shared_ptr<common::ThreadPool> pool =
      std::make_shared<common::ThreadPool>(
          std::clamp<std::size_t>(std::thread::hardware_concurrency(), 2, 8),
          "promql-eval");
  return pool;
}

promql::EngineOptions with_default_pool(promql::EngineOptions options) {
  if (!options.pool) options.pool = query_eval_pool();
  return options;
}

}  // namespace

std::optional<common::TimestampMs> parse_time_param(const std::string& text) {
  auto seconds = common::parse_double(text);
  if (!seconds) return std::nullopt;
  return static_cast<common::TimestampMs>(*seconds * 1000.0);
}

Json value_to_json(const promql::Value& value) {
  JsonObject data;
  switch (value.kind) {
    case promql::Value::Kind::kScalar: {
      data["resultType"] = Json("scalar");
      data["result"] = sample_pair(0, value.scalar);
      break;
    }
    case promql::Value::Kind::kVector: {
      data["resultType"] = Json("vector");
      JsonArray result;
      for (const auto& sample : value.vector) {
        JsonObject entry;
        entry["metric"] = labels_to_json(sample.labels);
        entry["value"] = sample_pair(0, sample.value);
        result.push_back(Json(std::move(entry)));
      }
      data["result"] = Json(std::move(result));
      break;
    }
    default:
      data["resultType"] = Json("string");
      data["result"] = Json(value.string_value);
  }
  return Json(std::move(data));
}

Json matrix_to_json(const std::vector<Series>& matrix) {
  JsonObject data;
  data["resultType"] = Json("matrix");
  JsonArray result;
  for (const auto& series : matrix) {
    JsonObject entry;
    entry["metric"] = labels_to_json(series.labels);
    JsonArray values;
    for (const auto& sample : series.samples) {
      values.push_back(sample_pair(sample.t, sample.v));
    }
    entry["values"] = Json(std::move(values));
    result.push_back(Json(std::move(entry)));
  }
  data["result"] = Json(std::move(result));
  return Json(std::move(data));
}

PromApi::PromApi(std::shared_ptr<const Queryable> source,
                 common::ClockPtr clock, promql::EngineOptions options)
    : source_(std::move(source)),
      clock_(std::move(clock)),
      engine_(with_default_pool(std::move(options))) {}

void PromApi::attach(http::Server& server) {
  server.handle("/api/v1/query",
                [this](const http::Request& r) { return handle_query(r); });
  server.handle("/api/v1/query_range", [this](const http::Request& r) {
    return handle_query_range(r);
  });
  server.handle("/api/v1/series",
                [this](const http::Request& r) { return handle_series(r); });
  server.handle("/-/healthy", [](const http::Request&) {
    return http::Response::text(200, "ok\n");
  });
}

http::Response PromApi::handle_query(const http::Request& request) const {
  auto params = request.query_params();
  auto query_it = params.find("query");
  if (query_it == params.end())
    return http::Response::json(400, error_body("missing query").dump());
  common::TimestampMs t = clock_->now_ms();
  if (auto time_it = params.find("time"); time_it != params.end()) {
    auto parsed = parse_time_param(time_it->second);
    if (!parsed)
      return http::Response::json(400, error_body("bad time").dump());
    t = *parsed;
  }
  try {
    // Fixed-timestamp evaluation: value pairs carry the evaluation time.
    promql::Value value = engine_.eval(*source_, query_it->second, t);
    Json data = value_to_json(value);
    // Patch evaluation timestamps into the value pairs.
    if (data.get("result") && data.at("result").is_array()) {
      for (auto& entry : data["result"].as_array()) {
        if (entry.is_object() && entry.get("value")) {
          entry["value"].as_array()[0] =
              Json(static_cast<double>(t) / 1000.0);
        }
      }
    } else if (data.get_string("resultType") == "scalar") {
      data["result"].as_array()[0] = Json(static_cast<double>(t) / 1000.0);
    }
    return http::Response::json(200, success_body(std::move(data)).dump());
  } catch (const std::exception& e) {
    return http::Response::json(422, error_body(e.what()).dump());
  }
}

http::Response PromApi::handle_query_range(
    const http::Request& request) const {
  auto params = request.query_params();
  auto query_it = params.find("query");
  auto start_it = params.find("start");
  auto end_it = params.find("end");
  auto step_it = params.find("step");
  if (query_it == params.end() || start_it == params.end() ||
      end_it == params.end() || step_it == params.end()) {
    return http::Response::json(
        400, error_body("query, start, end, step required").dump());
  }
  auto start = parse_time_param(start_it->second);
  auto end = parse_time_param(end_it->second);
  // step accepts both "30" (seconds) and "30s" style.
  auto step_ms = common::parse_duration_ms(step_it->second);
  if (!step_ms) {
    if (auto seconds = common::parse_double(step_it->second)) {
      step_ms = static_cast<int64_t>(*seconds * 1000.0);
    }
  }
  if (!start || !end || !step_ms || *step_ms <= 0)
    return http::Response::json(400,
                                error_body("bad start/end/step").dump());
  try {
    auto matrix =
        engine_.eval_range(*source_, query_it->second, *start, *end, *step_ms);
    return http::Response::json(
        200, success_body(matrix_to_json(matrix)).dump());
  } catch (const std::exception& e) {
    return http::Response::json(422, error_body(e.what()).dump());
  }
}

http::Response PromApi::handle_series(const http::Request& request) const {
  auto selectors = request.query_param_all("match[]");
  if (selectors.empty())
    return http::Response::json(400, error_body("missing match[]").dump());
  auto params = request.query_params();
  common::TimestampMs start = 0;
  common::TimestampMs end = clock_->now_ms();
  if (auto it = params.find("start"); it != params.end()) {
    if (auto parsed = parse_time_param(it->second)) start = *parsed;
  }
  if (auto it = params.find("end"); it != params.end()) {
    if (auto parsed = parse_time_param(it->second)) end = *parsed;
  }
  try {
    JsonArray result;
    for (const auto& selector : selectors) {
      promql::ExprPtr expr = promql::parse(selector);
      if (expr->kind != promql::Expr::Kind::kVectorSelector)
        return http::Response::json(
            400, error_body("match[] must be a selector").dump());
      std::vector<LabelMatcher> matchers = expr->matchers;
      if (!expr->metric_name.empty()) {
        matchers.push_back({std::string(metrics::kMetricNameLabel),
                            LabelMatcher::Op::kEq, expr->metric_name});
      }
      for (const auto& series : source_->select(matchers, start, end)) {
        result.push_back(labels_to_json(series.labels));
      }
    }
    return http::Response::json(
        200, success_body(Json(std::move(result))).dump());
  } catch (const std::exception& e) {
    return http::Response::json(422, error_body(e.what()).dump());
  }
}

}  // namespace ceems::tsdb
