// cgroup v2 accounting files: writer used by the resource-manager simulator
// (one cgroup per compute workload, exactly as SLURM/Libvirt/Kubelet do per
// the paper) and reader used by the CEEMS exporter's cgroup collector.
//
// File formats follow the kernel's cgroup v2 documentation:
//   cpu.stat        flat-keyed: usage_usec / user_usec / system_usec
//   memory.current  single value (bytes)
//   memory.peak     single value (bytes)
//   memory.max      single value or "max"
//   memory.stat     flat-keyed (subset: anon, file, kernel)
//   io.stat         "<maj>:<min> rbytes=N wbytes=N rios=N wios=N"
//   cgroup.procs    one PID per line
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "simfs/pseudo_fs.h"

namespace ceems::simfs {

// Default root and the SLURM job scope used on Jean-Zay-like systems.
inline constexpr const char* kCgroupRoot = "/sys/fs/cgroup";
inline constexpr const char* kSlurmScope =
    "/sys/fs/cgroup/system.slice/slurmstepd.scope";

struct CgroupCpuStat {
  int64_t usage_usec = 0;
  int64_t user_usec = 0;
  int64_t system_usec = 0;
};

struct CgroupMemoryStat {
  int64_t current_bytes = 0;
  int64_t peak_bytes = 0;
  int64_t max_bytes = -1;  // -1 = "max" (no limit)
  int64_t anon_bytes = 0;
  int64_t file_bytes = 0;
};

struct CgroupIoStat {
  int64_t rbytes = 0;
  int64_t wbytes = 0;
  int64_t rios = 0;
  int64_t wios = 0;
};

struct CgroupStats {
  CgroupCpuStat cpu;
  CgroupMemoryStat memory;
  CgroupIoStat io;
  std::vector<int64_t> procs;
};

// Writer side — maintains the accounting files for one cgroup directory.
class CgroupWriter {
 public:
  CgroupWriter(PseudoFsPtr fs, std::string path);

  const std::string& path() const { return path_; }

  void update_cpu(const CgroupCpuStat& cpu);
  void update_memory(const CgroupMemoryStat& memory);
  void update_io(const CgroupIoStat& io);
  void set_procs(const std::vector<int64_t>& pids);

  // Removes the cgroup directory (job teardown).
  void destroy();

 private:
  PseudoFsPtr fs_;
  std::string path_;
};

// Reader side — parses the accounting files of one cgroup directory.
// Returns nullopt if the directory does not exist (job already gone, a race
// the exporter must tolerate).
std::optional<CgroupStats> read_cgroup(const Fs& fs,
                                       const std::string& path);

// Lists child cgroup directories under `scope` (e.g. job_123, job_456).
std::vector<std::string> list_child_cgroups(const Fs& fs,
                                            const std::string& scope);

}  // namespace ceems::simfs
