// E8 — why the CEEMS API server exists (§II-B.b): "Although Prometheus is
// a highly performant TSDB, it is not suitable to make queries that span a
// long duration. An example ... the total energy usage of a given user ...
// during the last year."
//
// Regenerates that comparison: answering "total energy of user X over the
// whole retention window" by
//   (a) a long-range PromQL query over the raw long-term store, vs
//   (b) one indexed lookup + GROUP BY on the API server's units DB.
//
// Expected shape: the DB path is orders of magnitude faster and flat in
// the time-range length, while the raw-TSDB path grows with range; exactly
// the trade the paper built the API server for.
#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/strutil.h"

#include <cstdio>

#include "core/stack.h"

using namespace ceems;

namespace {

struct World {
  std::shared_ptr<common::SimClock> clock;
  std::unique_ptr<slurm::ClusterSim> sim;
  std::unique_ptr<core::CeemsStack> stack;
  std::string busy_user;
  common::TimestampMs start = 0;
};

// One long simulated window with full monitoring. Built once, shared by
// all benchmarks (expensive).
World& world() {
  static World w = [] {
    World built;
    built.clock = common::make_sim_clock(1700000000000LL);
    built.start = built.clock->now_ms();
    slurm::JeanZayScale scale = slurm::JeanZayScale{}.scaled(0.005);
    auto gen = slurm::make_jean_zay_workload_config(scale, 4000);
    built.sim = std::make_unique<slurm::ClusterSim>(
        built.clock, slurm::make_jean_zay_cluster(built.clock, scale, 42),
        gen, 42);
    core::StackConfig config;
    // Keep everything raw in the long-term store so the PromQL side pays
    // the full cost the paper describes.
    config.longterm.downsample_after_ms = 365LL * common::kMillisPerDay;
    built.stack = std::make_unique<core::CeemsStack>(*built.sim, config);
    common::TimestampMs next = built.clock->now_ms();
    built.sim->run_for(8 * common::kMillisPerHour, 30000,
                       [&](common::TimestampMs now) {
                         built.stack->pipeline_step();
                         if (now >= next) {
                           built.stack->update_api();
                           next = now + 120000;
                         }
                       });
    built.stack->update_api();

    reldb::Query query;
    query.group_by = {"user"};
    query.aggregates = {{reldb::AggFn::kSum, "total_energy_joules", "j"}};
    query.order_by = "j";
    query.descending = true;
    query.limit = 1;
    auto top = built.stack->db().query(apiserver::kUnitsTable, query);
    built.busy_user = top.rows.empty() ? "user0" : top.at(0, "user").as_text();
    return built;
  }();
  return w;
}

void BM_raw_promql_long_range(benchmark::State& state) {
  World& w = world();
  // Total attributed energy over the last `range_hours`: integrate job
  // power via avg_over_time × duration (a single long-range query).
  int64_t range_ms = state.range(0) * common::kMillisPerHour;
  tsdb::promql::Engine engine;
  std::string query = "sum(avg_over_time(ceems_job_power_watts[" +
                      common::format_duration_ms(range_ms) + "]))";
  auto expr = tsdb::promql::parse(query);
  for (auto _ : state) {
    auto value = engine.eval(*w.stack->longterm(), expr, w.clock->now_ms());
    benchmark::DoNotOptimize(value);
  }
  state.counters["range_hours"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_raw_promql_long_range)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8);

void BM_downsampled_long_range(benchmark::State& state) {
  // Thanos-style downsampling ablation: the same 8 h query against a
  // long-term store compacted to 5-minute resolution. Downsampling cuts
  // the held samples ~9x; query CPU improves moderately (the engine only
  // reads the matching series), the dominant win is storage/retention.
  World& w = world();
  static std::shared_ptr<tsdb::LongTermStore> compacted = [] {
    tsdb::LongTermConfig config;
    config.downsample_after_ms = 0;  // everything eligible immediately
    config.resolution_ms = 5 * common::kMillisPerMinute;
    auto store = std::make_shared<tsdb::LongTermStore>(config);
    store->sync_from(*world().stack->hot_store());
    store->compact(world().clock->now_ms() + 1);
    return store;
  }();
  tsdb::promql::Engine engine;
  auto expr = tsdb::promql::parse(
      "sum(avg_over_time(ceems_job_power_watts[8h]))");
  for (auto _ : state) {
    auto value = engine.eval(*compacted, expr, w.clock->now_ms());
    benchmark::DoNotOptimize(value);
  }
  state.counters["samples"] =
      static_cast<double>(compacted->stats().num_samples);
}
BENCHMARK(BM_downsampled_long_range)->Unit(benchmark::kMillisecond);

void BM_api_db_aggregate(benchmark::State& state) {
  World& w = world();
  reldb::Query query;
  query.where = {{"user", reldb::Predicate::Op::kEq,
                  reldb::Value(w.busy_user)}};
  query.group_by = {"user"};
  query.aggregates = {
      {reldb::AggFn::kSum, "total_energy_joules", "joules"},
      {reldb::AggFn::kSum, "total_emissions_grams", "gco2"},
      {reldb::AggFn::kCount, "", "units"}};
  for (auto _ : state) {
    auto result = w.stack->db().query(apiserver::kUnitsTable, query);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_api_db_aggregate)->Unit(benchmark::kMicrosecond);

void BM_api_http_roundtrip(benchmark::State& state) {
  World& w = world();
  w.stack->start_servers();
  http::Client client;
  http::HeaderMap headers;
  headers["X-Grafana-User"] = "admin";
  std::string url = w.stack->api_url() + "/api/v1/usage?scope=user";
  for (auto _ : state) {
    auto result = client.get(url, headers);
    if (!result.ok || result.response.status != 200) {
      state.SkipWithError("api request failed");
      break;
    }
    benchmark::DoNotOptimize(result.response.body);
  }
}
BENCHMARK(BM_api_http_roundtrip)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  common::set_log_level(common::LogLevel::kError);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  World& w = world();
  auto stats = w.stack->longterm()->stats();
  std::printf("\nE8 context: long-term store held %zu series / %zu samples; "
              "units DB held %zu rows.\nThe DB aggregate answers the "
              "\"user's total energy\" question without touching any of "
              "them.\n",
              stats.num_series, stats.num_samples,
              w.stack->db().table_size(apiserver::kUnitsTable));
  return 0;
}
