// Soak scenario DSL + report plumbing (tier1 — the actual soak runs are
// tier2, tests/soak_test.cpp). Covers: parse/serialize round-trips, every
// builtin parses, window validation, bench_json has the shape
// tools/bench_guard.py consumes.
#include <gtest/gtest.h>

#include "common/json.h"
#include "soak/runner.h"
#include "soak/scenario.h"

namespace ceems::soak {
namespace {

Scenario parse_ok(const std::string& text) {
  std::string error;
  auto scenario = parse_scenario_text(text, &error);
  EXPECT_TRUE(scenario.has_value()) << error;
  return scenario.value_or(Scenario{});
}

std::string parse_error(const std::string& text) {
  std::string error;
  auto scenario = parse_scenario_text(text, &error);
  EXPECT_FALSE(scenario.has_value()) << "parsed unexpectedly";
  return error;
}

TEST(SoakScenario, ParsesFullGrammar) {
  Scenario s = parse_ok(
      "# comment line\n"
      "scenario storms   # trailing comment\n"
      "nodes 500\n"
      "duration 45m\n"
      "step 5s\n"
      "scrape_interval 15s\n"
      "jobs_per_day 12000\n"
      "seed 99\n"
      "checkpoint_every 3m\n"
      "hot_retention 20m\n"
      "recovery 4m\n"
      "budget bytes_fixed 32M\n"
      "budget bytes_per_node 192k\n"
      "budget ingest_lag 90s\n"
      "budget query_points_p99 50000\n"
      "storm flap from 5m for 20m fraction 0.3\n"
      "storm cardinality from 10m for 10m series 4000 churn 2\n"
      "storm churn from 15m for 10m factor 5\n"
      "outage emissions from 20m for 10m\n"
      "storm lb from 24m for 8m fraction 0.75\n"
      "storm crash_restart from 22m for 12m every 3m\n");
  EXPECT_EQ(s.name, "storms");
  EXPECT_EQ(s.nodes, 500);
  EXPECT_EQ(s.duration_ms, 45 * common::kMillisPerMinute);
  EXPECT_EQ(s.step_ms, 5 * common::kMillisPerSecond);
  EXPECT_EQ(s.scrape_interval_ms, 15 * common::kMillisPerSecond);
  EXPECT_EQ(s.jobs_per_day, 12000);
  EXPECT_EQ(s.seed, 99u);
  EXPECT_EQ(s.checkpoint_every_ms, 3 * common::kMillisPerMinute);
  EXPECT_EQ(s.hot_retention_ms, 20 * common::kMillisPerMinute);
  EXPECT_EQ(s.recovery_ms, 4 * common::kMillisPerMinute);
  EXPECT_EQ(s.budgets.bytes_fixed, 32u << 20);
  EXPECT_EQ(s.budgets.bytes_per_node, 192u << 10);
  EXPECT_EQ(s.budgets.ingest_lag_ms, 90 * common::kMillisPerSecond);
  EXPECT_EQ(s.budgets.query_points_p99, 50000u);

  ASSERT_TRUE(s.flap);
  EXPECT_EQ(s.flap->window.start_ms, 5 * common::kMillisPerMinute);
  EXPECT_EQ(s.flap->window.end_ms, 25 * common::kMillisPerMinute);
  EXPECT_DOUBLE_EQ(s.flap->fraction, 0.3);
  ASSERT_TRUE(s.cardinality);
  EXPECT_EQ(s.cardinality->series, 4000);
  EXPECT_EQ(s.cardinality->churn_sweeps, 2);
  ASSERT_TRUE(s.churn);
  EXPECT_DOUBLE_EQ(s.churn->factor, 5);
  ASSERT_TRUE(s.outage);
  EXPECT_EQ(s.outage->window.end_ms, 30 * common::kMillisPerMinute);
  ASSERT_TRUE(s.lb);
  EXPECT_DOUBLE_EQ(s.lb->flap_fraction, 0.75);
  ASSERT_TRUE(s.crash_restart);
  EXPECT_EQ(s.crash_restart->window.start_ms, 22 * common::kMillisPerMinute);
  EXPECT_EQ(s.crash_restart->window.end_ms, 34 * common::kMillisPerMinute);
  EXPECT_EQ(s.crash_restart->every_ms, 3 * common::kMillisPerMinute);
  EXPECT_EQ(s.last_storm_end_ms(), 34 * common::kMillisPerMinute);
}

TEST(SoakScenario, RoundTripsThroughText) {
  Scenario s = parse_ok(builtin_scenario_text("smoke"));
  Scenario again = parse_ok(to_text(s));
  EXPECT_EQ(to_text(s), to_text(again));
  EXPECT_EQ(again.nodes, s.nodes);
  EXPECT_EQ(again.duration_ms, s.duration_ms);
  EXPECT_EQ(again.budgets.query_points_p99, s.budgets.query_points_p99);
  ASSERT_TRUE(again.cardinality);
  EXPECT_EQ(again.cardinality->series, s.cardinality->series);
}

TEST(SoakScenario, EveryBuiltinParses) {
  auto names = builtin_scenario_names();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    std::string text = builtin_scenario_text(name);
    ASSERT_FALSE(text.empty());
    Scenario s = parse_ok(text);
    EXPECT_EQ(s.name, name);
    // Storm windows must leave room for the recovery invariants.
    EXPECT_LE(s.last_storm_end_ms(), s.duration_ms);
    EXPECT_GT(s.recovery_ms, 0);
  }
  EXPECT_TRUE(builtin_scenario_text("no-such-scenario").empty());
}

TEST(SoakScenario, RejectsBadInput) {
  EXPECT_NE(parse_error("bogus_directive 1\n").find("line 1"),
            std::string::npos);
  EXPECT_NE(parse_error("nodes -5\n").find("bad node count"),
            std::string::npos);
  EXPECT_NE(parse_error("storm flap at 5m\n").find("from"),
            std::string::npos);
  EXPECT_NE(parse_error("budget frobs 12\n").find("unknown budget"),
            std::string::npos);
  EXPECT_NE(parse_error("storm cardinality from 1m for 2m series 0\n")
                .find("series"),
            std::string::npos);
  EXPECT_NE(parse_error("storm crash_restart from 1m for 2m every 0s\n")
                .find("every"),
            std::string::npos);
  // A storm window past the duration is a scenario bug, not a runtime one.
  EXPECT_NE(parse_error("duration 10m\nstorm flap from 8m for 5m\n")
                .find("extends past"),
            std::string::npos);
}

TEST(SoakScenario, WindowContainsIsHalfOpen) {
  StormWindow window{1000, 2000};
  EXPECT_FALSE(window.contains(999));
  EXPECT_TRUE(window.contains(1000));
  EXPECT_TRUE(window.contains(1999));
  EXPECT_FALSE(window.contains(2000));
}

TEST(SoakScenario, DefaultJobsPerDayScalesWithNodes) {
  Scenario s;
  s.nodes = 10;
  EXPECT_DOUBLE_EQ(s.effective_jobs_per_day(), 7000.0);
  s.jobs_per_day = 1234;
  EXPECT_DOUBLE_EQ(s.effective_jobs_per_day(), 1234.0);
}

TEST(SoakReport, BenchJsonHasBenchGuardShape) {
  SoakReport report;
  report.scenario.name = "smoke";
  report.scenario.seed = 11;
  report.node_count = 100;
  report.ok = true;
  report.peak_bytes = 1u << 20;
  report.max_series = 4321;
  report.dropped_scrapes = 17;
  report.samples_ingested = 99999;
  report.points_scanned = 5555;
  report.query_points_p99 = 444;
  report.units_total = 1300;

  auto json = common::Json::parse(bench_json({report}));
  // The exact shape tools/bench_guard.py consumes: context with the
  // build type, benchmarks[] with name/run_type plus counter fields.
  ASSERT_TRUE(json.at("context").get("library_build_type").has_value());
  const auto& benchmarks = json.at("benchmarks").as_array();
  ASSERT_EQ(benchmarks.size(), 1u);
  const auto& bench = benchmarks[0];
  EXPECT_EQ(bench.at("name").as_string(), "soak/smoke/seed11");
  EXPECT_EQ(bench.at("run_type").as_string(), "iteration");
  EXPECT_EQ(bench.at("peak_bytes").as_int(), 1 << 20);
  EXPECT_EQ(bench.at("max_series").as_int(), 4321);
  EXPECT_EQ(bench.at("dropped_scrapes").as_int(), 17);
  EXPECT_EQ(bench.at("samples_ingested").as_int(), 99999);
  EXPECT_EQ(bench.at("query_points_p99").as_int(), 444);
  EXPECT_TRUE(bench.at("invariants_ok").as_bool());
}

TEST(SoakCrashRestart, MiniScenarioRecoversLosslesslyMidRun) {
  // A small fleet with the crash_restart storm on a tight cadence: the
  // hot store is power-cut and WAL-recovered in place several times
  // mid-run. The runner itself asserts lossless recovery (counts and
  // canonical queries identical across each crash) — any divergence
  // lands in report.violations and flips ok.
  Scenario s = parse_ok(
      "scenario mini-crash\n"
      "nodes 8\n"
      "duration 8m\n"
      "step 10s\n"
      "scrape_interval 30s\n"
      "checkpoint_every 2m\n"
      "hot_retention 6m\n"
      "recovery 2m\n"
      "storm crash_restart from 1m for 7m every 2m\n");
  s.seed = 77;
  SoakReport report = SoakRunner(s).run();
  for (const auto& violation : report.violations) {
    ADD_FAILURE() << violation;
  }
  EXPECT_TRUE(report.ok);
  EXPECT_GE(report.crash_restarts, 3u);
  EXPECT_GT(report.wal_records_replayed, 0u);
  EXPECT_GT(report.samples_ingested, 0u);
}

TEST(SoakReport, ReplayCommandNamesScenarioNodesSeed) {
  SoakReport report;
  report.scenario.name = "full";
  report.scenario.nodes = 1000;
  report.scenario.seed = 8;
  EXPECT_EQ(report.replay_command(),
            "ceems_soak --scenario full --nodes 1000 --seed 8");
}

}  // namespace
}  // namespace ceems::soak
