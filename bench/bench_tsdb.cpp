// TSDB microbenchmarks: ingestion throughput, selector evaluation, and the
// PromQL operations the CEEMS pipeline leans on (rate over a window, Eq. 1
// style group_left joins, sum by aggregation). These underpin E4's scaling
// headroom numbers.
//
// The *_mt benchmarks exercise the sharded store and the parallel range
// evaluator at 1/4/8 threads — the scaling evidence for the lock-striped
// design. Run without arguments the binary writes its results to
// BENCH_tsdb.json (JSON reporter) for the perf trajectory; any explicit
// --benchmark_out flag overrides that.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/threadpool.h"
#include "tsdb/promql_eval.h"

using namespace ceems;
using tsdb::TimeSeriesStore;

namespace {

// Builds a store with `hosts`×`series_per_host` series × `samples` each.
std::shared_ptr<TimeSeriesStore> make_store(int hosts, int series_per_host,
                                            int samples) {
  auto store = std::make_shared<TimeSeriesStore>();
  for (int h = 0; h < hosts; ++h) {
    for (int s = 0; s < series_per_host; ++s) {
      metrics::Labels labels =
          metrics::Labels{{"hostname", "n" + std::to_string(h)},
                          {"uuid", std::to_string(s)}}
              .with_name("m");
      for (int i = 0; i < samples; ++i) {
        store->append(labels, i * 30000, i * 10.0);
      }
    }
  }
  return store;
}

void BM_append(benchmark::State& state) {
  TimeSeriesStore store;
  common::Rng rng(1);
  std::vector<metrics::Labels> labels;
  for (int s = 0; s < 1000; ++s) {
    labels.push_back(metrics::Labels{{"uuid", std::to_string(s)}}
                         .with_name("m"));
  }
  int64_t t = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    store.append(labels[i % labels.size()], t, 1.0);
    if (++i % labels.size() == 0) t += 30000;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_append);

void BM_select_by_equality(benchmark::State& state) {
  auto store = make_store(static_cast<int>(state.range(0)), 20, 120);
  for (auto _ : state) {
    auto result = store->select(
        {{"hostname", metrics::LabelMatcher::Op::kEq, "n0"}}, 0,
        120 * 30000);
    benchmark::DoNotOptimize(result);
  }
  state.counters["total_series"] = static_cast<double>(state.range(0) * 20);
}
BENCHMARK(BM_select_by_equality)->Arg(10)->Arg(100)->Arg(1000);

void BM_rate_over_window(benchmark::State& state) {
  auto store = make_store(static_cast<int>(state.range(0)), 10, 120);
  tsdb::promql::Engine engine;
  auto expr = tsdb::promql::parse("sum by (hostname) (rate(m[2m]))");
  for (auto _ : state) {
    auto value = engine.eval(*store, expr, 120 * 30000);
    benchmark::DoNotOptimize(value);
  }
  state.counters["series"] = static_cast<double>(state.range(0) * 10);
}
BENCHMARK(BM_rate_over_window)->Arg(10)->Arg(100)->Arg(400);

void BM_group_left_join(benchmark::State& state) {
  // The Eq. 1 shape: per-uuid series joined onto per-host series.
  auto store = std::make_shared<TimeSeriesStore>();
  int hosts = static_cast<int>(state.range(0));
  for (int h = 0; h < hosts; ++h) {
    std::string host = "n" + std::to_string(h);
    store->append(metrics::Labels{{"hostname", host}}.with_name("node_w"),
                  30000, 300.0);
    for (int u = 0; u < 8; ++u) {
      store->append(metrics::Labels{{"hostname", host},
                                    {"uuid", std::to_string(u)}}
                        .with_name("job_share"),
                    30000, 0.125);
    }
  }
  tsdb::promql::Engine engine;
  auto expr = tsdb::promql::parse(
      "job_share * on(hostname) group_left() node_w");
  for (auto _ : state) {
    auto value = engine.eval(*store, expr, 30000);
    benchmark::DoNotOptimize(value);
  }
  state.counters["result_samples"] = static_cast<double>(hosts * 8);
}
BENCHMARK(BM_group_left_join)->Arg(10)->Arg(100)->Arg(1000);

void BM_range_query(benchmark::State& state) {
  auto store = make_store(20, 10, 240);  // 2 h of data
  tsdb::promql::Engine engine;
  auto expr = tsdb::promql::parse("sum by (hostname) (rate(m[2m]))");
  for (auto _ : state) {
    auto matrix = engine.eval_range(*store, expr, 0, 240 * 30000, 60000);
    benchmark::DoNotOptimize(matrix);
  }
}
BENCHMARK(BM_range_query);

void BM_purge(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto store = make_store(50, 20, 120);
    state.ResumeTiming();
    benchmark::DoNotOptimize(store->purge_before(60 * 30000));
  }
}
BENCHMARK(BM_purge);

// ---------- concurrency benchmarks (sharded store) ----------

// Reference reproduction of the pre-sharding seed design: one shared_mutex
// in front of a single series map. Kept here (bench-only) so every
// BENCH_tsdb.json carries the single-lock baseline the sharded numbers are
// judged against, independent of which machine ran it.
class SingleLockStore {
 public:
  bool append(const metrics::Labels& labels, int64_t t, double v) {
    uint64_t fingerprint = labels.fingerprint();
    std::unique_lock lock(mu_);
    auto it = series_.find(fingerprint);
    if (it == series_.end()) {
      it = series_.emplace(fingerprint, Entry{labels, {}}).first;
    }
    Entry& entry = it->second;
    if (!entry.samples.empty() && t < entry.samples.back().t) return false;
    if (!entry.samples.empty() && t == entry.samples.back().t) {
      entry.samples.back().v = v;
      return true;
    }
    entry.samples.push_back({t, v});
    return true;
  }

 private:
  struct Entry {
    metrics::Labels labels;
    std::vector<tsdb::SamplePoint> samples;
  };
  std::shared_mutex mu_;
  std::unordered_map<uint64_t, Entry> series_;
};

// Same workload as BM_concurrent_ingest but through the single global
// lock — the seed's scaling curve.
void BM_concurrent_ingest_single_lock(benchmark::State& state) {
  static std::shared_ptr<SingleLockStore> store;
  if (state.thread_index() == 0) store = std::make_shared<SingleLockStore>();

  std::vector<metrics::Labels> labels;
  for (int s = 0; s < 256; ++s) {
    labels.push_back(
        metrics::Labels{{"thread", "t" + std::to_string(state.thread_index())},
                        {"uuid", std::to_string(s)}}
            .with_name("m"));
  }
  int64_t t = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    store->append(labels[i % labels.size()], t, 1.0);
    if (++i % labels.size() == 0) t += 30000;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  if (state.thread_index() == 0) store.reset();
}
BENCHMARK(BM_concurrent_ingest_single_lock)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Ingest throughput with N writer threads appending to disjoint series —
// the scrape-sweep shape: every exporter produces its own label sets.
// Aggregate items/s across threads is the number to watch: with the
// single-mutex seed it stayed flat from 1 to 8 threads; the sharded store
// must scale it ≥2x at 8 threads.
void BM_concurrent_ingest(benchmark::State& state) {
  static std::shared_ptr<TimeSeriesStore> store;
  if (state.thread_index() == 0) store = std::make_shared<TimeSeriesStore>();

  std::vector<metrics::Labels> labels;
  for (int s = 0; s < 256; ++s) {
    labels.push_back(
        metrics::Labels{{"thread", "t" + std::to_string(state.thread_index())},
                        {"uuid", std::to_string(s)}}
            .with_name("m"));
  }
  int64_t t = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    store->append(labels[i % labels.size()], t, 1.0);
    if (++i % labels.size() == 0) t += 30000;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  if (state.thread_index() == 0) store.reset();
}
BENCHMARK(BM_concurrent_ingest)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Batched scrape-style ingest: whole sweeps through append_all, which
// groups samples by shard and takes each shard lock once per batch.
void BM_concurrent_ingest_batched(benchmark::State& state) {
  static std::shared_ptr<TimeSeriesStore> store;
  if (state.thread_index() == 0) store = std::make_shared<TimeSeriesStore>();

  std::vector<metrics::Sample> batch;
  for (int s = 0; s < 256; ++s) {
    batch.push_back(
        {metrics::Labels{{"thread", "t" + std::to_string(state.thread_index())},
                         {"uuid", std::to_string(s)}}
             .with_name("m"),
         0, 1.0});
  }
  int64_t t = 0;
  for (auto _ : state) {
    t += 30000;
    for (auto& sample : batch) sample.timestamp_ms = t;
    benchmark::DoNotOptimize(store->append_all(batch));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch.size()));
  if (state.thread_index() == 0) store.reset();
}
BENCHMARK(BM_concurrent_ingest_batched)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Range-query evaluation with the step grid parallelised across an
// N-thread pool (arg = pool size; 1 = the serial path).
void BM_parallel_range_query(benchmark::State& state) {
  auto store = make_store(20, 10, 240);  // 2 h of data
  int threads = static_cast<int>(state.range(0));
  tsdb::promql::EngineOptions options;
  options.query_cache_capacity = 0;  // measure evaluation, not the cache
  if (threads > 1) {
    options.pool = std::make_shared<common::ThreadPool>(
        static_cast<std::size_t>(threads), "bench-eval");
  }
  tsdb::promql::Engine engine(options);
  auto expr = tsdb::promql::parse("sum by (hostname) (rate(m[2m]))");
  for (auto _ : state) {
    auto matrix = engine.eval_range(*store, expr, 0, 240 * 30000, 60000);
    benchmark::DoNotOptimize(matrix);
  }
  state.counters["eval_threads"] = threads;
}
BENCHMARK(BM_parallel_range_query)->Arg(1)->Arg(4)->Arg(8);

// Concurrent range queries against one store: the dashboard/LB fan-in
// shape. Each benchmark thread runs its own engine over the shared store.
void BM_concurrent_range_queries(benchmark::State& state) {
  static std::shared_ptr<TimeSeriesStore> store;
  if (state.thread_index() == 0) store = make_store(20, 10, 240);

  tsdb::promql::EngineOptions options;
  options.query_cache_capacity = 0;
  tsdb::promql::Engine engine(options);
  auto expr = tsdb::promql::parse("sum by (hostname) (rate(m[2m]))");
  for (auto _ : state) {
    auto matrix = engine.eval_range(*store, expr, 0, 240 * 30000, 60000);
    benchmark::DoNotOptimize(matrix);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  if (state.thread_index() == 0) store.reset();
}
BENCHMARK(BM_concurrent_range_queries)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Hit path of the (query, start, end, step) result cache.
void BM_cached_range_query(benchmark::State& state) {
  auto store = make_store(20, 10, 240);
  tsdb::promql::EngineOptions options;
  options.query_cache_capacity = 16;
  tsdb::promql::Engine engine(options);
  const std::string query = "sum by (hostname) (rate(m[2m]))";
  engine.eval_range(*store, query, 0, 240 * 30000, 60000);  // warm
  for (auto _ : state) {
    auto matrix = engine.eval_range(*store, query, 0, 240 * 30000, 60000);
    benchmark::DoNotOptimize(matrix);
  }
  state.counters["hits"] =
      static_cast<double>(engine.cache_stats().hits);
}
BENCHMARK(BM_cached_range_query);

}  // namespace

// BENCHMARK_MAIN, plus a default JSON report to BENCH_tsdb.json so every
// run leaves a perf-trajectory artifact without extra flags.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_tsdb.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
