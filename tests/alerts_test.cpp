// Alerting-rule engine tests: the pending→firing→resolved lifecycle, `for`
// durations, the ALERTS series, YAML parsing, and the shipped CEEMS alert
// set against a simulated exporter outage.
#include <gtest/gtest.h>

#include "common/yamlconf.h"
#include "core/rules_library.h"
#include "tsdb/rules.h"

namespace ceems::tsdb {
namespace {

Labels named(const std::string& name,
             std::initializer_list<Labels::Pair> pairs = {}) {
  return Labels(pairs).with_name(name);
}

class AlertsTest : public ::testing::Test {
 protected:
  AlertsTest() : store_(std::make_shared<TimeSeriesStore>()), engine_(store_) {
    RuleGroup group;
    group.name = "alerts";
    AlertingRule rule;
    rule.alert = "TargetDown";
    rule.expr = "up == 0";
    rule.for_ms = 60000;
    rule.static_labels = {{"severity", "critical"}};
    group.alerts.push_back(rule);
    engine_.add_group(std::move(group));
  }

  void set_up_metric(const std::string& host, common::TimestampMs t,
                     double value) {
    store_->append(named("up", {{"hostname", host}}), t, value);
  }

  StorePtr store_;
  RuleEngine engine_;
};

TEST_F(AlertsTest, PendingThenFiringAfterForDuration) {
  set_up_metric("n1", 0, 0);  // down
  RuleEvalStats first = engine_.evaluate_all(0);
  EXPECT_EQ(first.alerts_pending, 1u);
  EXPECT_EQ(first.alerts_firing, 0u);
  auto active = engine_.active_alerts();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0].state, AlertState::kPending);
  EXPECT_EQ(*active[0].labels.get("severity"), "critical");

  set_up_metric("n1", 30000, 0);
  EXPECT_EQ(engine_.evaluate_all(30000).alerts_pending, 1u);

  set_up_metric("n1", 60000, 0);
  RuleEvalStats third = engine_.evaluate_all(60000);
  EXPECT_EQ(third.alerts_firing, 1u);
  active = engine_.active_alerts();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0].state, AlertState::kFiring);

  // Firing alerts appear as ALERTS series.
  auto alerts_series = store_->select(
      {{"__name__", metrics::LabelMatcher::Op::kEq, "ALERTS"},
       {"alertstate", metrics::LabelMatcher::Op::kEq, "firing"}},
      0, 60000);
  ASSERT_EQ(alerts_series.size(), 1u);
  EXPECT_EQ(*alerts_series[0].labels.get("alertname"), "TargetDown");
}

TEST_F(AlertsTest, RecoveryResolvesBeforeFiring) {
  set_up_metric("n1", 0, 0);
  engine_.evaluate_all(0);
  EXPECT_EQ(engine_.active_alerts().size(), 1u);
  // Back up before the `for` window elapses: pending alert resolves and
  // a later outage starts a fresh clock.
  set_up_metric("n1", 30000, 1);
  engine_.evaluate_all(30000);
  EXPECT_TRUE(engine_.active_alerts().empty());

  set_up_metric("n1", 60000, 0);
  RuleEvalStats stats = engine_.evaluate_all(60000);
  EXPECT_EQ(stats.alerts_pending, 1u);  // pending again, not firing
  EXPECT_EQ(stats.alerts_firing, 0u);
}

TEST_F(AlertsTest, PerSeriesAlertInstances) {
  set_up_metric("n1", 0, 0);
  set_up_metric("n2", 0, 0);
  set_up_metric("n3", 0, 1);
  engine_.evaluate_all(0);
  EXPECT_EQ(engine_.active_alerts().size(), 2u);
  // One recovers, the other keeps its clock and eventually fires.
  set_up_metric("n1", 70000, 1);
  set_up_metric("n2", 70000, 0);
  RuleEvalStats stats = engine_.evaluate_all(70000);
  EXPECT_EQ(stats.alerts_firing, 1u);
  auto active = engine_.active_alerts();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(*active[0].labels.get("hostname"), "n2");
}

TEST_F(AlertsTest, ResolvedAlertEndsSeriesWithStalenessMarker) {
  // Fire, then recover: the ALERTS{alertstate="firing"} series must end
  // with a staleness marker at the resolving evaluation, so instant
  // queries drop it immediately instead of replaying the last 1-sample
  // for a full lookback window.
  for (common::TimestampMs t = 0; t <= 120000; t += 30000) {
    set_up_metric("n1", t, 0);
    engine_.evaluate_all(t);
  }
  EXPECT_EQ(engine_.active_alerts().size(), 1u);
  set_up_metric("n1", 150000, 1);  // recovered
  engine_.evaluate_all(150000);
  EXPECT_TRUE(engine_.active_alerts().empty());

  auto alerts_series = store_->select(
      {{"__name__", metrics::LabelMatcher::Op::kEq, "ALERTS"}}, 0, 200000);
  ASSERT_EQ(alerts_series.size(), 1u);
  auto samples = alerts_series[0].materialize().samples;
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(samples.back().t, 150000);
  EXPECT_TRUE(metrics::is_stale_marker(samples.back().v));

  // While firing the instant selector sees the alert; one step after
  // resolution it is gone — well inside the 5-minute lookback.
  promql::Engine promql_engine;
  auto firing = promql_engine.eval(*store_, "ALERTS", 120000);
  EXPECT_EQ(firing.vector.size(), 1u);
  auto resolved = promql_engine.eval(*store_, "ALERTS", 150000);
  EXPECT_TRUE(resolved.vector.empty());
  auto later = promql_engine.eval(*store_, "ALERTS", 180000);
  EXPECT_TRUE(later.vector.empty());
}

// A pending alert that recovers never wrote ALERTS samples, so it must
// not write a marker either (no phantom one-sample series).
TEST_F(AlertsTest, PendingRecoveryWritesNoMarker) {
  set_up_metric("n1", 0, 0);
  engine_.evaluate_all(0);
  set_up_metric("n1", 30000, 1);
  engine_.evaluate_all(30000);
  auto alerts_series = store_->select(
      {{"__name__", metrics::LabelMatcher::Op::kEq, "ALERTS"}}, 0, 60000);
  EXPECT_TRUE(alerts_series.empty());
}

TEST(AlertsParsing, YamlAlertRules) {
  auto root = common::parse_yaml(
      "groups:\n"
      "  - name: ops\n"
      "    rules:\n"
      "      - alert: HighPower\n"
      "        expr: watts > 1000\n"
      "        for: 5m\n"
      "        labels:\n"
      "          severity: warning\n"
      "      - record: a:b\n"
      "        expr: up\n");
  auto groups = parse_rule_groups(root);
  ASSERT_EQ(groups.size(), 1u);
  ASSERT_EQ(groups[0].alerts.size(), 1u);
  ASSERT_EQ(groups[0].rules.size(), 1u);
  EXPECT_EQ(groups[0].alerts[0].alert, "HighPower");
  EXPECT_EQ(groups[0].alerts[0].for_ms, 5 * common::kMillisPerMinute);
  ASSERT_EQ(groups[0].alerts[0].static_labels.size(), 1u);
}

TEST(AlertsParsing, InvalidAlertRejectedAtLoad) {
  auto store = std::make_shared<TimeSeriesStore>();
  RuleEngine engine(store);
  RuleGroup group;
  AlertingRule unnamed;
  unnamed.expr = "up == 0";
  group.alerts.push_back(unnamed);
  EXPECT_THROW(engine.add_group(std::move(group)), promql::ParseError);

  RuleGroup bad_expr;
  AlertingRule broken;
  broken.alert = "X";
  broken.expr = "sum((";
  bad_expr.alerts.push_back(broken);
  EXPECT_THROW(engine.add_group(std::move(bad_expr)), promql::ParseError);
}

TEST(CeemsAlerts, ExporterOutageFiresShippedRule) {
  auto store = std::make_shared<TimeSeriesStore>();
  RuleEngine engine(store);
  for (auto& group : core::ceems_alert_rules()) {
    engine.add_group(std::move(group));
  }
  // Healthy scrape generations, then an outage longer than `for: 2m`.
  auto put_up = [&](common::TimestampMs t, double value) {
    store->append(named("up", {{"hostname", "jzcpu7"}}), t, value);
    store->append(named("ceems_emissions_gCo2_kWh",
                        {{"provider", "rte"}, {"country_code", "FR"}}),
                  t, 50);
  };
  common::TimestampMs t = 0;
  for (; t <= 120000; t += 30000) {
    put_up(t, 1);
    EXPECT_EQ(engine.evaluate_all(t).alerts_firing, 0u);
  }
  RuleEvalStats stats;
  for (; t <= 360000; t += 30000) {
    put_up(t, 0);
    stats = engine.evaluate_all(t);
  }
  EXPECT_EQ(stats.alerts_firing, 1u);
  auto active = engine.active_alerts();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0].name, "CeemsExporterDown");
}

}  // namespace
}  // namespace ceems::tsdb
