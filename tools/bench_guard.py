#!/usr/bin/env python3
"""Benchmark regression guard for deterministic work counters.

Compares the counters a fresh bench_tsdb run emitted against the committed
baseline (BENCH_tsdb.json) and fails when either:

  * the fresh run's context says the binary was built without optimisations
    ("library_build_type": "debug") — a debug-recorded baseline once made
    every number in BENCH_tsdb.json meaningless, so this is a hard error
    regardless of counter values; or
  * a guarded counter drifted beyond tolerance from the baseline.

Only *deterministic work counters* are guarded (points scanned, chunks
decoded, bytes per sample) — never wall-clock time, which is hopeless on
shared CI runners. The counters are exact functions of the workload and the
code, so drift means a real behaviour change: e.g. the resolution-aware
planner silently falling back to raw scans shows up as
points_scanned_per_query jumping 20x, far outside any tolerance.

Benchmarks present in only one file are reported but not fatal (new
benchmarks land before their baseline is re-recorded; retired ones linger
in the baseline until then).

Usage:
  bench_guard.py --current build/bench/BENCH_tsdb_smoke.json \
                 --baseline BENCH_tsdb.json [--tolerance 0.1]
"""

import argparse
import json
import sys

# Counters that are deterministic functions of workload + code. Time-based
# metrics are deliberately absent.
GUARDED_COUNTERS = (
    "points_scanned_per_query",
    "decodes_per_query",
    "bytes_per_sample",
    "compression_ratio",
)


def load_benchmarks(path):
    with open(path) as f:
        doc = json.load(f)
    runs = {}
    for bench in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev) duplicate counter values;
        # keep plain iterations only.
        if bench.get("run_type") == "aggregate":
            continue
        runs[bench["name"]] = bench
    return doc.get("context", {}), runs


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="JSON emitted by the fresh benchmark run")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON (BENCH_tsdb.json)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max relative drift per counter (default 0.10)")
    args = parser.parse_args()

    context, current = load_benchmarks(args.current)
    build_type = context.get("library_build_type")
    if build_type != "release":
        print(f"FAIL: current run context says library_build_type="
              f"{build_type!r}, expected 'release'. Re-run the benchmark "
              f"from a -DCMAKE_BUILD_TYPE=Release build.")
        return 1
    print(f"library_build_type: {build_type}")

    baseline_context, baseline = load_benchmarks(args.baseline)
    baseline_build = baseline_context.get("library_build_type")
    if baseline_build != "release":
        print(f"FAIL: committed baseline {args.baseline} was recorded from a "
              f"{baseline_build!r} build; re-record it from a Release build.")
        return 1

    failures = []
    compared = 0
    for name, bench in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            print(f"note: {name} has no baseline entry (new benchmark?)")
            continue
        for counter in GUARDED_COUNTERS:
            if counter not in bench:
                continue
            if counter not in base:
                print(f"note: {name}: baseline lacks counter {counter}")
                continue
            cur_v = float(bench[counter])
            base_v = float(base[counter])
            compared += 1
            if base_v == 0.0:
                drift = 0.0 if cur_v == 0.0 else float("inf")
            else:
                drift = abs(cur_v - base_v) / abs(base_v)
            status = "ok" if drift <= args.tolerance else "FAIL"
            print(f"{status}: {name} {counter}: current={cur_v:g} "
                  f"baseline={base_v:g} drift={drift:.1%}")
            if drift > args.tolerance:
                failures.append((name, counter, cur_v, base_v))

    for name in sorted(baseline):
        if name not in current:
            print(f"note: baseline entry {name} absent from current run "
                  f"(filtered out or retired)")

    if compared == 0:
        print("FAIL: no guarded counters compared — wrong file or filter?")
        return 1
    if failures:
        print(f"\n{len(failures)} counter(s) drifted beyond "
              f"{args.tolerance:.0%}:")
        for name, counter, cur_v, base_v in failures:
            print(f"  {name} {counter}: {base_v:g} -> {cur_v:g}")
        return 1
    print(f"\nall {compared} guarded counters within {args.tolerance:.0%} "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
