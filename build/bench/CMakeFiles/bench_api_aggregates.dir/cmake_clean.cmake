file(REMOVE_RECURSE
  "CMakeFiles/bench_api_aggregates.dir/bench_api_aggregates.cpp.o"
  "CMakeFiles/bench_api_aggregates.dir/bench_api_aggregates.cpp.o.d"
  "bench_api_aggregates"
  "bench_api_aggregates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_api_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
