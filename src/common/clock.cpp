#include "common/clock.h"

#include <chrono>

namespace ceems::common {

TimestampMs RealClock::now_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

bool RealClock::sleep_until(TimestampMs deadline_ms) {
  std::unique_lock lock(mu_);
  for (;;) {
    if (interrupted_) return false;
    TimestampMs now = now_ms();
    if (now >= deadline_ms) return true;
    cv_.wait_for(lock, std::chrono::milliseconds(deadline_ms - now));
  }
}

void RealClock::interrupt() {
  {
    std::lock_guard lock(mu_);
    interrupted_ = true;
  }
  cv_.notify_all();
}

TimestampMs SimClock::now_ms() const {
  std::lock_guard lock(mu_);
  return now_;
}

bool SimClock::sleep_until(TimestampMs deadline_ms) {
  std::unique_lock lock(mu_);
  ++sleepers_;
  auto deadline_it = sleeper_deadlines_.insert(deadline_ms);
  cv_.wait(lock, [&] { return interrupted_ || now_ >= deadline_ms; });
  sleeper_deadlines_.erase(deadline_it);
  --sleepers_;
  sleeper_exit_cv_.notify_all();
  return !interrupted_;
}

void SimClock::interrupt() {
  {
    std::lock_guard lock(mu_);
    interrupted_ = true;
  }
  cv_.notify_all();
  sleeper_exit_cv_.notify_all();
}

// Precondition: `lock` holds mu_. Parks the advancing thread until every
// sleeper whose deadline is <= now_ has left sleep_until. Without this, a
// driver that polls sleeper_count() between advances can observe the stale
// count of an already-woken (but not yet scheduled) sleeper and burn a
// second advance on it — a race that only shows up on loaded or single-core
// machines.
void SimClock::wait_for_due_sleepers(std::unique_lock<std::mutex>& lock) {
  sleeper_exit_cv_.wait(lock, [&] {
    return interrupted_ || sleeper_deadlines_.empty() ||
           *sleeper_deadlines_.begin() > now_;
  });
}

void SimClock::advance(TimestampMs delta_ms) {
  std::unique_lock lock(mu_);
  now_ += delta_ms;
  cv_.notify_all();
  wait_for_due_sleepers(lock);
}

void SimClock::set(TimestampMs now_ms) {
  std::unique_lock lock(mu_);
  now_ = now_ms;
  cv_.notify_all();
  wait_for_due_sleepers(lock);
}

int SimClock::sleeper_count() const {
  std::lock_guard lock(mu_);
  return sleepers_;
}

ClockPtr make_real_clock() { return std::make_shared<RealClock>(); }

std::shared_ptr<SimClock> make_sim_clock(TimestampMs start_ms) {
  return std::make_shared<SimClock>(start_ms);
}

}  // namespace ceems::common
