#include "metrics/symbols.h"

#include <algorithm>
#include <mutex>
#include <regex>

#include "metrics/regex_cache.h"

namespace ceems::metrics {

SymbolTable& SymbolTable::global() {
  static SymbolTable* table = new SymbolTable();  // immortal, like the ids
  return *table;
}

uint32_t SymbolTable::intern(std::string_view text) {
  {
    std::shared_lock lock(mu_);
    auto it = ids_.find(text);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  auto it = ids_.find(text);  // raced insert between the two locks
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(text);
  ids_.emplace(std::string_view(strings_.back()), id);
  string_bytes_ += text.size();
  return id;
}

std::optional<uint32_t> SymbolTable::find(std::string_view text) const {
  std::shared_lock lock(mu_);
  auto it = ids_.find(text);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

std::string_view SymbolTable::text(uint32_t id) const {
  std::shared_lock lock(mu_);
  if (id >= strings_.size()) return {};
  // The string's storage is stable for the process lifetime; only the
  // deque's internal bookkeeping needs the lock.
  return strings_[id];
}

std::size_t SymbolTable::size() const {
  std::shared_lock lock(mu_);
  return strings_.size();
}

std::size_t SymbolTable::approx_bytes() const {
  std::shared_lock lock(mu_);
  return string_bytes_ +
         strings_.size() * (sizeof(std::string) + sizeof(std::string_view) +
                            sizeof(uint32_t) + 2 * sizeof(void*));
}

InternedLabels::InternedLabels(const Labels& labels) {
  SymbolTable& table = SymbolTable::global();
  syms_.reserve(labels.size());
  for (const auto& [name, value] : labels.pairs()) {
    syms_.emplace_back(table.intern(name), table.intern(value));
  }
  fingerprint_ = labels.fingerprint();
}

InternedLabels::InternedLabels(const Labels& labels,
                               uint64_t fingerprint_override)
    : InternedLabels(labels) {
  fingerprint_ = fingerprint_override;
}

void InternedLabels::rebuild(const std::vector<SymbolPair>& syms) {
  SymbolTable& table = SymbolTable::global();
  syms_ = syms;
  std::sort(syms_.begin(), syms_.end(),
            [&table](const SymbolPair& a, const SymbolPair& b) {
              return table.text(a.first) < table.text(b.first);
            });
  // Same FNV-1a-with-separators scheme as Labels::fingerprint().
  uint64_t hash = kEmptyFingerprint;
  auto mix = [&hash](std::string_view text) {
    for (char c : text) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 0x100000001b3ULL;
    }
    hash ^= 0xff;
    hash *= 0x100000001b3ULL;
  };
  for (const auto& [name_sym, value_sym] : syms_) {
    mix(table.text(name_sym));
    mix(table.text(value_sym));
  }
  fingerprint_ = hash;
}

std::optional<std::string_view> InternedLabels::get(
    std::string_view name) const {
  SymbolTable& table = SymbolTable::global();
  auto name_sym = table.find(name);
  if (!name_sym) return std::nullopt;
  for (const auto& [n, v] : syms_) {
    if (n == *name_sym) return table.text(v);
  }
  return std::nullopt;
}

std::string_view InternedLabels::name() const {
  auto value = get(kMetricNameLabel);
  return value ? *value : std::string_view{};
}

InternedLabels InternedLabels::with(std::string_view name,
                                    std::string_view value) const {
  SymbolTable& table = SymbolTable::global();
  return with_symbols(table.intern(name), table.intern(value));
}

InternedLabels InternedLabels::with_symbols(uint32_t name_sym,
                                            uint32_t value_sym) const {
  std::vector<SymbolPair> syms;
  syms.reserve(syms_.size() + 1);
  bool replaced = false;
  for (const auto& pair : syms_) {
    if (pair.first == name_sym) {
      syms.emplace_back(name_sym, value_sym);
      replaced = true;
    } else {
      syms.push_back(pair);
    }
  }
  if (!replaced) syms.emplace_back(name_sym, value_sym);
  InternedLabels out;
  out.rebuild(syms);
  return out;
}

Labels InternedLabels::to_labels() const {
  SymbolTable& table = SymbolTable::global();
  std::vector<Labels::Pair> pairs;
  pairs.reserve(syms_.size());
  for (const auto& [name_sym, value_sym] : syms_) {
    pairs.emplace_back(std::string(table.text(name_sym)),
                       std::string(table.text(value_sym)));
  }
  return Labels(std::move(pairs));
}

bool LabelMatcher::matches(const InternedLabels& labels) const {
  auto actual = labels.get(name);
  std::string_view value_view = actual.value_or(std::string_view{});
  switch (op) {
    case Op::kEq:
      return value_view == value;
    case Op::kNe:
      return value_view != value;
    case Op::kRegexMatch:
    case Op::kRegexNoMatch: {
      // PromQL regexes are fully anchored (same behaviour as the Labels
      // overload in labels.cpp); the compile is cached per pattern.
      auto re = compiled_anchored_regex(value);
      bool match = std::regex_search(std::string(value_view), *re);
      return op == Op::kRegexMatch ? match : !match;
    }
  }
  return false;
}

}  // namespace ceems::metrics
