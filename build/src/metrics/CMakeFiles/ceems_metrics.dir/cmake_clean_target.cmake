file(REMOVE_RECURSE
  "libceems_metrics.a"
)
