#include "exporter/gpu_collector.h"

namespace ceems::exporter {

using metrics::Labels;
using metrics::MetricFamily;
using metrics::MetricType;

std::vector<metrics::MetricFamily> GpuCollector::collect(
    common::TimestampMs /*now*/) {
  MetricFamily nv_power{"DCGM_FI_DEV_POWER_USAGE",
                        "GPU power draw in watts.",
                        MetricType::kGauge,
                        {}};
  MetricFamily nv_util{"DCGM_FI_DEV_GPU_UTIL",
                       "GPU utilization percent.",
                       MetricType::kGauge,
                       {}};
  MetricFamily nv_fb{"DCGM_FI_DEV_FB_USED",
                     "GPU framebuffer used in MiB.",
                     MetricType::kGauge,
                     {}};
  MetricFamily nv_energy{"DCGM_FI_DEV_TOTAL_ENERGY_CONSUMPTION",
                         "Cumulative GPU energy in millijoules.",
                         MetricType::kCounter,
                         {}};
  MetricFamily amd_power{"amd_gpu_power",
                         "AMD GPU power draw in microwatts.",
                         MetricType::kGauge,
                         {}};
  MetricFamily amd_util{"amd_gpu_use_percent",
                        "AMD GPU utilization percent.",
                        MetricType::kGauge,
                        {}};

  for (const auto& device : bank_.snapshot()) {
    if (device.vendor == node::GpuVendor::kNvidia) {
      Labels labels{{"gpu", std::to_string(device.ordinal)},
                    {"UUID", device.uuid},
                    {"modelName", device.model}};
      nv_power.add(labels, device.power_w);
      nv_util.add(labels, device.utilization * 100.0);
      nv_fb.add(labels, static_cast<double>(device.memory_used_bytes) /
                            (1024.0 * 1024.0));
      nv_energy.add(labels, device.lifetime_energy_j * 1000.0);
    } else {
      Labels labels{{"gpu_id", std::to_string(device.ordinal)},
                    {"model", device.model}};
      amd_power.add(labels, device.power_w * 1e6);
      amd_util.add(labels, device.utilization * 100.0);
    }
  }

  std::vector<MetricFamily> out;
  if (!nv_power.metrics.empty()) {
    out.push_back(std::move(nv_power));
    out.push_back(std::move(nv_util));
    out.push_back(std::move(nv_fb));
    out.push_back(std::move(nv_energy));
  }
  if (!amd_power.metrics.empty()) {
    out.push_back(std::move(amd_power));
    out.push_back(std::move(amd_util));
  }
  return out;
}

}  // namespace ceems::exporter
