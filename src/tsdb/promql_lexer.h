// Tokenizer for the PromQL subset.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "tsdb/promql_ast.h"

namespace ceems::tsdb::promql {

enum class TokenType {
  kEof,
  kIdentifier,  // metric names, function names, keywords
  kNumber,
  kString,    // 'x' or "x"
  kDuration,  // 5m, 30s, 1h30m
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kOp,  // + - * / % ^ == != <= < >= > = =~ !~
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;
  double number = 0;
  int64_t duration_ms = 0;
  std::size_t pos = 0;
};

// Tokenizes the whole input. Throws ParseError on bad characters.
std::vector<Token> lex(std::string_view input);

}  // namespace ceems::tsdb::promql
