# Empty dependencies file for bench_jean_zay_scale.
# This may be replaced when dependencies are built.
