// ceems_exporter — standalone CEEMS exporter binary.
//
// Two modes:
//   --real-host   Read the REAL /proc, /sys/class/powercap and cgroup v2
//                 tree of this machine via RealFs. On any Linux box this
//                 serves genuine node metrics; RAPL/cgroup collectors emit
//                 whatever the host actually exposes.
//   (default)     Simulate one busy compute node (demo mode) and serve its
//                 metrics, stepping the simulation in real time.
//
//   ceems_exporter [--port N] [--auth user:pass] [--real-host]
//                  [--cgroup-scope /sys/fs/cgroup/...] [--once]
//
// --once renders a single exposition to stdout and exits (promtool-style
// smoke test). Otherwise serves /metrics until SIGINT.
#include <csignal>
#include <cstdio>
#include <thread>

#include "cli/flags.h"
#include "common/logging.h"
#include "core/node_exporter_factory.h"
#include "exporter/cgroup_collector.h"
#include "exporter/node_collector.h"
#include "exporter/rapl_collector.h"
#include "simfs/real_fs.h"

using namespace ceems;

namespace {
volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  cli::Flags flags(argc, argv,
                   "[--port N] [--auth user:pass] [--real-host] "
                   "[--cgroup-scope PATH] [--once]");
  common::set_log_level(common::LogLevel::kInfo);

  exporter::ExporterConfig config;
  config.http.port = static_cast<uint16_t>(flags.get_int("port", 9010));
  std::string auth = flags.get("auth");
  if (!auth.empty()) {
    auto colon = auth.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--auth must be user:pass\n");
      return 1;
    }
    config.http.basic_auth = {auth.substr(0, colon), auth.substr(colon + 1)};
  }

  auto clock = common::make_real_clock();
  std::unique_ptr<exporter::Exporter> exporter;
  node::NodeSimPtr sim_node;  // demo mode only

  if (flags.get_bool("real-host")) {
    auto fs = std::make_shared<simfs::RealFs>();
    exporter = std::make_unique<exporter::Exporter>(config, clock);
    exporter->add_collector(
        std::make_shared<exporter::NodeCollector>(fs));
    exporter->add_collector(std::make_shared<exporter::RaplCollector>(fs));
    std::string scope =
        flags.get("cgroup-scope", "/sys/fs/cgroup/system.slice");
    exporter->add_collector(std::make_shared<exporter::CgroupCollector>(
        fs, scope, /*child_prefix=*/"", /*manager=*/"host"));
    std::fprintf(stderr, "serving REAL host metrics (cgroup scope %s)\n",
                 scope.c_str());
  } else {
    sim_node = std::make_shared<node::NodeSim>(
        node::make_intel_cpu_node("demo-node"), clock, 1);
    node::WorkloadPlacement placement;
    placement.job_id = 1001;
    placement.user = "demo";
    placement.alloc_cpus = 8;
    placement.memory_limit_bytes = 16LL << 30;
    node::WorkloadBehavior behavior;
    behavior.cpu_util_mean = 0.75;
    sim_node->add_workload(placement, behavior);
    sim_node->step(1000);
    exporter = core::make_ceems_exporter(sim_node, clock, config);
    std::fprintf(stderr, "serving SIMULATED node metrics (demo mode)\n");
  }

  if (flags.get_bool("once")) {
    std::fputs(exporter->render(clock->now_ms()).c_str(), stdout);
    return 0;
  }

  exporter->start();
  std::fprintf(stderr, "listening on %s\n", exporter->metrics_url().c_str());
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (!g_stop) {
    if (sim_node) sim_node->step(1000);
    std::this_thread::sleep_for(std::chrono::seconds(1));
  }
  exporter->stop();
  std::fprintf(stderr, "bye (%llu scrapes served)\n",
               (unsigned long long)exporter->scrapes_total());
  return 0;
}
