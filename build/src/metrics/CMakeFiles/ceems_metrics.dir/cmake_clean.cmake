file(REMOVE_RECURSE
  "CMakeFiles/ceems_metrics.dir/labels.cpp.o"
  "CMakeFiles/ceems_metrics.dir/labels.cpp.o.d"
  "CMakeFiles/ceems_metrics.dir/model.cpp.o"
  "CMakeFiles/ceems_metrics.dir/model.cpp.o.d"
  "CMakeFiles/ceems_metrics.dir/registry.cpp.o"
  "CMakeFiles/ceems_metrics.dir/registry.cpp.o.d"
  "CMakeFiles/ceems_metrics.dir/text_format.cpp.o"
  "CMakeFiles/ceems_metrics.dir/text_format.cpp.o.d"
  "libceems_metrics.a"
  "libceems_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceems_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
