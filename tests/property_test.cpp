// Property-style tests: invariants that must hold across randomized
// parameter sweeps (parameterized gtest). These guard the physical and
// accounting laws the whole reproduction rests on.
#include <gtest/gtest.h>

#include <cmath>

#include "core/stack.h"
#include "metrics/text_format.h"
#include "tsdb/promql_eval.h"

namespace ceems {
namespace {

using common::Rng;
using metrics::LabelMatcher;

// ---------- power-model invariants across random workload mixes ----------

class PowerModelProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PowerModelProperty, AttributionConservesAndStaysPositive) {
  Rng rng(GetParam());
  node::NodeSpec spec;
  switch (rng.uniform_int(0, 3)) {
    case 0: spec = node::make_intel_cpu_node("n"); break;
    case 1: spec = node::make_amd_cpu_node("n"); break;
    case 2: spec = node::make_v100_node("n"); break;
    default: spec = node::make_a100_node("n"); break;
  }
  node::PowerModel model(spec);

  std::vector<node::WorkloadUsage> usages;
  int jobs = static_cast<int>(rng.uniform_int(0, 6));
  int cpus_left = spec.total_cpus();
  std::set<int> gpus_free;
  for (std::size_t g = 0; g < spec.gpus.size(); ++g)
    gpus_free.insert(static_cast<int>(g));
  for (int j = 0; j < jobs && cpus_left > 0; ++j) {
    node::WorkloadUsage usage;
    usage.job_id = j + 1;
    usage.alloc_cpus =
        static_cast<int>(rng.uniform_int(1, std::max(1, cpus_left / 2)));
    cpus_left -= usage.alloc_cpus;
    usage.cpu_util = rng.uniform(0, 1);
    usage.memory_bytes = static_cast<int64_t>(
        rng.uniform(0, 0.4) * static_cast<double>(spec.memory_bytes));
    usage.memory_activity = rng.uniform(0, 1);
    if (!gpus_free.empty() && rng.chance(0.5)) {
      usage.gpu_ordinals.push_back(*gpus_free.begin());
      gpus_free.erase(gpus_free.begin());
      usage.gpu_util = rng.uniform(0, 1);
    }
    usages.push_back(usage);
  }

  node::PowerBreakdown power = model.node_power(usages);
  // Component powers within physical bounds.
  EXPECT_GE(power.cpu_pkg_w, spec.cpu_idle_w() - 1e-9);
  EXPECT_LE(power.cpu_pkg_w, spec.cpu_tdp_w() + 1e-9);
  EXPECT_GE(power.dram_w, spec.dram_idle_w - 1e-9);
  EXPECT_LE(power.dram_w, spec.dram_max_w + 1e-9);
  EXPECT_GT(power.ipmi_w, 0);

  // Attribution: non-negative, and total ≈ node power minus idle draw of
  // unbound GPUs.
  double attributed = 0;
  for (const auto& truth : model.attribute(usages)) {
    EXPECT_GE(truth.cpu_w, -1e-9);
    EXPECT_GE(truth.dram_w, -1e-9);
    EXPECT_GE(truth.gpu_w, -1e-9);
    EXPECT_GE(truth.static_share_w, -1e-9);
    attributed += truth.total_w();
  }
  double unbound_idle = 0;
  for (int ordinal : gpus_free) {
    unbound_idle += spec.gpus[static_cast<std::size_t>(ordinal)].idle_power_w;
  }
  if (!usages.empty()) {
    EXPECT_NEAR(attributed, power.node_dc_w - unbound_idle,
                0.03 * power.node_dc_w);
  } else {
    EXPECT_DOUBLE_EQ(attributed, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PowerModelProperty,
                         ::testing::Range<uint64_t>(1, 25));

// ---------- RAPL counter invariants ----------

class RaplProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RaplProperty, ExportedCounterMonotoneDespiteWraps) {
  Rng rng(GetParam());
  node::RaplDomain domain("package-0", /*max_energy_range_uj=*/500000);
  int64_t last_raw = domain.energy_uj();
  double healed = 0;
  double healed_prev = 0;
  for (int i = 0; i < 200; ++i) {
    int64_t delta = rng.uniform_int(0, 90000);
    domain.add_energy_uj(delta);
    healed += node::rapl_joules_between(last_raw, domain.energy_uj(), 500000);
    last_raw = domain.energy_uj();
    EXPECT_GE(healed, healed_prev);
    healed_prev = healed;
    EXPECT_LT(domain.energy_uj(), 500000);
    EXPECT_GE(domain.energy_uj(), 0);
  }
  // Healed counter equals lifetime energy exactly (single wrap per step).
  EXPECT_NEAR(healed, domain.lifetime_joules(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaplProperty,
                         ::testing::Range<uint64_t>(1, 15));

// ---------- scheduler invariants across workload intensities ----------

struct SchedulerSweep {
  double jobs_per_day;
  uint64_t seed;
};

class SchedulerProperty : public ::testing::TestWithParam<SchedulerSweep> {};

TEST_P(SchedulerProperty, NeverOversubscribesAndAllJobsTerminate) {
  auto clock = common::make_sim_clock(1000000);
  slurm::JeanZayScale scale = slurm::JeanZayScale{}.scaled(0.004);
  auto gen = slurm::make_jean_zay_workload_config(scale,
                                                  GetParam().jobs_per_day);
  gen.seed = GetParam().seed;
  slurm::ClusterSim sim(clock,
                        slurm::make_jean_zay_cluster(clock, scale,
                                                     GetParam().seed),
                        gen, GetParam().seed);
  sim.run_for(2 * common::kMillisPerHour, 15000,
              [&](common::TimestampMs) {
                for (const auto& node : sim.cluster().all_nodes()) {
                  ASSERT_LE(node->allocated_cpus(),
                            node->spec().total_cpus());
                }
              });
  // Job-state ledger is consistent.
  std::size_t terminal = 0, active = 0;
  for (const auto& job : sim.dbd().all_jobs()) {
    if (job.finished()) {
      ++terminal;
      EXPECT_GE(job.end_time_ms, job.start_time_ms);
      if (job.state != slurm::JobState::kCancelled) {
        EXPECT_GT(job.start_time_ms, 0);
      }
    } else {
      ++active;
    }
  }
  EXPECT_EQ(terminal + active, sim.dbd().size());
  EXPECT_GT(sim.jobs_submitted(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Load, SchedulerProperty,
    ::testing::Values(SchedulerSweep{500, 1}, SchedulerSweep{2000, 2},
                      SchedulerSweep{8000, 3}, SchedulerSweep{20000, 4}));

// ---------- TSDB query engine vs brute-force reference ----------

class TsdbProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TsdbProperty, SumByEqualsBruteForce) {
  Rng rng(GetParam());
  tsdb::TimeSeriesStore store;
  // Random series over hosts/modes with random sample counts.
  std::map<std::string, double> by_host;
  for (int s = 0; s < 40; ++s) {
    std::string host = "h" + std::to_string(rng.uniform_int(0, 5));
    // A distinct `series` label keeps every generated series unique, so
    // the brute-force reference never collides with the store's
    // out-of-order rejection.
    metrics::Labels labels =
        metrics::Labels{{"host", host}, {"series", std::to_string(s)}}
            .with_name("metric");
    double last = 0;
    int n = static_cast<int>(rng.uniform_int(1, 20));
    for (int i = 0; i < n; ++i) {
      last = rng.uniform(0, 100);
      store.append(labels, (i + 1) * 1000, last);
    }
    by_host[host] += last;
  }

  tsdb::promql::Engine engine;
  auto result = engine.eval(store, "sum by (host) (metric)", 25000);
  ASSERT_EQ(result.vector.size(), by_host.size());
  for (const auto& sample : result.vector) {
    std::string host(*sample.labels.get("host"));
    EXPECT_NEAR(sample.value, by_host[host], 1e-9) << host;
  }
}

TEST_P(TsdbProperty, IncreaseMatchesCounterDelta) {
  Rng rng(GetParam());
  tsdb::TimeSeriesStore store;
  metrics::Labels labels = metrics::Labels{}.with_name("c");
  double counter = 0;
  double first_in_window = -1, last_in_window = 0;
  common::TimestampMs window_start = 60001;  // (60s, 360s]
  common::TimestampMs window_end = 360000;
  for (int i = 0; i <= 24; ++i) {
    common::TimestampMs t = i * 15000;
    counter += rng.uniform(0, 50);
    store.append(labels, t, counter);
    if (t >= window_start && t <= window_end) {
      if (first_in_window < 0) first_in_window = counter;
      last_in_window = counter;
    }
  }
  tsdb::promql::Engine engine;
  auto result = engine.eval(store, "increase(c[5m])", window_end);
  ASSERT_EQ(result.vector.size(), 1u);
  EXPECT_NEAR(result.vector[0].value, last_in_window - first_in_window, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TsdbProperty,
                         ::testing::Range<uint64_t>(1, 15));

// ---------- exposition wire-format round trip ----------

class ExpositionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExpositionProperty, EncodeParseRoundTripsArbitraryLabels) {
  Rng rng(GetParam());
  // Random label values exercising every escape path (backslash, quote,
  // newline, UTF-8-ish bytes).
  auto random_value = [&rng]() {
    static const char* pieces[] = {"plain", "with space", "a\\b", "q\"q",
                                   "nl\nnl", "ünïcode", "{}", "=,"};
    std::string out;
    int n = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < n; ++i) {
      out += pieces[rng.uniform_int(0, 7)];
    }
    return out;
  };

  std::vector<metrics::MetricFamily> families;
  metrics::MetricFamily family{"fuzz_metric", "help text",
                               metrics::MetricType::kGauge, {}};
  int metrics_count = static_cast<int>(rng.uniform_int(1, 20));
  for (int i = 0; i < metrics_count; ++i) {
    metrics::Labels labels{{"a", random_value()},
                           {"b", random_value()},
                           {"i", std::to_string(i)}};
    family.add(labels, rng.uniform(-1e6, 1e6));
  }
  families.push_back(family);

  auto parsed = metrics::parse_exposition(metrics::encode_families(families));
  ASSERT_EQ(parsed.samples.size(), static_cast<std::size_t>(metrics_count));
  for (int i = 0; i < metrics_count; ++i) {
    const auto& original = family.metrics[static_cast<std::size_t>(i)];
    // Find the parsed sample with the same "i" label.
    bool found = false;
    for (const auto& sample : parsed.samples) {
      if (sample.labels.get("i") != std::to_string(i)) continue;
      found = true;
      EXPECT_EQ(*sample.labels.get("a"), *original.labels.get("a"));
      EXPECT_EQ(*sample.labels.get("b"), *original.labels.get("b"));
      EXPECT_DOUBLE_EQ(sample.value, original.value);
    }
    EXPECT_TRUE(found) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpositionProperty,
                         ::testing::Range<uint64_t>(1, 12));

// ---------- WAL replay idempotence ----------

class WalProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalProperty, ReplayEqualsOriginal) {
  Rng rng(GetParam());
  std::string path = ::testing::TempDir() + "wal_prop_" +
                     std::to_string(GetParam()) + ".wal";
  std::remove(path.c_str());
  {
    reldb::Database db(path);
    reldb::Schema schema;
    schema.columns = {{"id", reldb::ColumnType::kInt},
                      {"v", reldb::ColumnType::kReal}};
    schema.primary_key = "id";
    db.create_table("t", schema);
    for (int i = 0; i < 300; ++i) {
      int64_t id = rng.uniform_int(0, 40);
      if (rng.chance(0.25)) {
        db.erase("t", reldb::Value(id));
      } else {
        db.upsert("t", {reldb::Value(id), reldb::Value(rng.uniform(0, 1))});
      }
    }
    auto replayed = reldb::Database::open(path);
    EXPECT_EQ(replayed->table_size("t"), db.table_size("t"));
    for (int id = 0; id <= 40; ++id) {
      auto original = db.get("t", reldb::Value(id));
      auto copy = replayed->get("t", reldb::Value(id));
      ASSERT_EQ(original.has_value(), copy.has_value()) << id;
      if (original) {
        EXPECT_DOUBLE_EQ((*original)[1].as_real(), (*copy)[1].as_real());
      }
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalProperty,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace ceems
