// E12 — static vs real-time emission factors (§II-A.c: "Energy mix data is
// dynamic in time and so as are emission factors"; CEEMS supports OWID
// static data plus RTE / Electricity Maps real-time feeds).
//
// A 1 kW workload runs for 8 hours starting at different times of day; its
// emissions are computed with (a) the OWID static yearly factor and
// (b) the RTE real-time factor integrated over the actual window.
//
// Expected shape: the static factor is indifferent to *when* the job ran;
// the real-time factor charges evening-peak jobs visibly more than
// night-valley jobs (tens of percent swing), which is the paper's argument
// for wiring real-time providers in. Also benchmarked: provider lookup
// costs and the caching wrapper that keeps Electricity Maps' free-tier
// quota happy.
#include <benchmark/benchmark.h>

#include "common/logging.h"

#include <cstdio>

#include "emissions/electricity_maps.h"
#include "emissions/owid.h"
#include "emissions/rte.h"

using namespace ceems;
using namespace ceems::emissions;

namespace {

// Integrated emissions of a constant-power job over [start, start+dur).
double realtime_emissions_g(double watts, common::TimestampMs start_ms,
                            int64_t duration_ms) {
  double grams = 0;
  const int64_t dt = 15 * common::kMillisPerMinute;  // RTE publication grid
  for (int64_t t = 0; t < duration_ms; t += dt) {
    double factor = RteProvider::model_gco2_per_kwh(start_ms + t);
    grams += emissions_grams(watts * (dt / 1000.0), factor);
  }
  return grams;
}

void BM_owid_lookup(benchmark::State& state) {
  OwidProvider owid;
  for (auto _ : state) {
    auto factor = owid.factor("FR", 0);
    benchmark::DoNotOptimize(factor);
  }
}
BENCHMARK(BM_owid_lookup);

void BM_rte_model(benchmark::State& state) {
  int64_t t = 0;
  for (auto _ : state) {
    double factor = RteProvider::model_gco2_per_kwh(t);
    t += 60000;
    benchmark::DoNotOptimize(factor);
  }
}
BENCHMARK(BM_rte_model);

void BM_emaps_with_cache(benchmark::State& state) {
  auto clock = common::make_sim_clock(0);
  auto inner = std::make_shared<ElectricityMapsProvider>(
      clock, EMapsConfig{.max_requests_per_hour = 60});
  CachingProvider cached(inner, 15 * common::kMillisPerMinute);
  for (auto _ : state) {
    auto factor = cached.factor("FR", clock->now_ms());
    clock->advance(30000);
    benchmark::DoNotOptimize(factor);
  }
  state.counters["upstream_requests"] =
      static_cast<double>(inner->requests_made());
  state.counters["cache_hits"] = static_cast<double>(cached.cache_hits());
}
BENCHMARK(BM_emaps_with_cache);

}  // namespace

int main(int argc, char** argv) {
  common::set_log_level(common::LogLevel::kError);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  OwidProvider owid;
  double static_factor = owid.factor("FR", 0)->gco2_per_kwh;
  const double watts = 1000.0;
  const int64_t duration = 8 * common::kMillisPerHour;
  double static_grams =
      emissions_grams(watts * (duration / 1000.0), static_factor);

  // Mid-January (winter uplift) base date.
  common::TimestampMs base_day = 14 * common::kMillisPerDay;

  std::printf("\nE12 — 1 kW × 8 h job in France: static (OWID %.0f g/kWh) "
              "vs real-time (RTE)\n",
              static_factor);
  std::printf("%-16s | %-12s | %-12s | %-10s\n", "job start", "static g",
              "realtime g", "delta %");
  for (int start_hour : {0, 6, 12, 16, 22}) {
    common::TimestampMs start =
        base_day + start_hour * common::kMillisPerHour;
    double realtime = realtime_emissions_g(watts, start, duration);
    std::printf("%02d:00 winter     | %12.0f | %12.0f | %+9.1f%%\n",
                start_hour, static_grams, realtime,
                100.0 * (realtime - static_grams) / static_grams);
  }
  // Summer contrast.
  common::TimestampMs summer_day = 196 * common::kMillisPerDay;
  for (int start_hour : {0, 16}) {
    common::TimestampMs start =
        summer_day + start_hour * common::kMillisPerHour;
    double realtime = realtime_emissions_g(watts, start, duration);
    std::printf("%02d:00 summer     | %12.0f | %12.0f | %+9.1f%%\n",
                start_hour, static_grams, realtime,
                100.0 * (realtime - static_grams) / static_grams);
  }
  std::printf("\na yearly-average factor cannot see the diurnal/seasonal "
              "swing; real-time feeds can.\n");
  return 0;
}
