#include <gtest/gtest.h>

#include "tsdb/longterm.h"
#include "tsdb/promql_eval.h"

namespace ceems::tsdb {
namespace {

using common::kMillisPerHour;
using common::kMillisPerMinute;

Labels named(const std::string& name, const std::string& host) {
  return Labels{{"hostname", host}}.with_name(name);
}

TEST(LongTerm, SyncPullsOnlyNewSamples) {
  TimeSeriesStore hot;
  LongTermStore lt;
  hot.append(named("m", "n1"), 1000, 1);
  hot.append(named("m", "n1"), 2000, 2);
  EXPECT_EQ(lt.sync_from(hot), 2u);
  hot.append(named("m", "n1"), 3000, 3);
  EXPECT_EQ(lt.sync_from(hot), 1u);  // incremental
  EXPECT_EQ(lt.sync_from(hot), 0u);  // idempotent

  auto series = lt.select({}, 0, 10000);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].samples().size(), 3u);
}

TEST(LongTerm, HotRetentionSurvivesInLongTerm) {
  // The hot TSDB can purge aggressively once data is replicated (Fig. 1).
  TimeSeriesStore hot;
  LongTermStore lt;
  for (int i = 0; i < 10; ++i) {
    hot.append(named("m", "n1"), i * 1000, i);
  }
  lt.sync_from(hot);
  hot.purge_before(8000);
  EXPECT_EQ(hot.stats().num_samples, 2u);
  EXPECT_EQ(lt.select({}, 0, 20000)[0].samples().size(), 10u);
}

TEST(LongTerm, CompactionDownsamplesOldData) {
  LongTermConfig config;
  config.downsample_after_ms = kMillisPerHour;
  config.resolution_ms = 5 * kMillisPerMinute;
  LongTermStore lt(config);
  TimeSeriesStore hot;
  // 2 h of 30 s samples.
  for (int i = 0; i < 240; ++i) {
    hot.append(named("m", "n1"), i * 30000, i);
  }
  lt.sync_from(hot);
  lt.compact(2 * kMillisPerHour);

  // First hour: 12 downsampled points (one per 5 min); second hour: raw.
  auto series = lt.select({}, 0, 2 * kMillisPerHour);
  ASSERT_EQ(series.size(), 1u);
  std::size_t old_points = 0;
  for (const auto& sample : series[0].samples()) {
    if (sample.t < kMillisPerHour) ++old_points;
  }
  EXPECT_EQ(old_points, 12u);
  EXPECT_EQ(series[0].samples().size(), 12u + 120u);
  // Buckets are left-open (t-res, t] so aligned PromQL windows tile whole
  // buckets; last-per-bucket keeps counter semantics: the sample exactly
  // on a boundary IS the bucket-end value.
  EXPECT_DOUBLE_EQ(series[0].samples()[0].v, 0);   // t=0, its own bucket
  EXPECT_DOUBLE_EQ(series[0].samples()[1].v, 10);  // t=300000, sample #10
}

TEST(LongTerm, CompactionPreservesCounterIncrease) {
  LongTermConfig config;
  config.downsample_after_ms = kMillisPerHour;
  config.resolution_ms = 5 * kMillisPerMinute;
  LongTermStore lt(config);
  TimeSeriesStore hot;
  for (int i = 0; i < 240; ++i) {
    hot.append(named("joules", "n1"), i * 30000, i * 300.0);  // 10 W
  }
  lt.sync_from(hot);

  promql::Engine engine;
  auto before = engine.eval(lt, "increase(joules[1h])", 2 * kMillisPerHour);
  lt.compact(2 * kMillisPerHour);
  auto after = engine.eval(lt, "increase(joules[1h])", 2 * kMillisPerHour);
  ASSERT_EQ(before.vector.size(), 1u);
  ASSERT_EQ(after.vector.size(), 1u);
  EXPECT_NEAR(before.vector[0].value, after.vector[0].value, 1e-9);

  // Increase over the downsampled epoch is also intact (coarser grid, same
  // cumulative counter).
  // 10 J/s counter; the 5-min grid trims the observed span to ~50.5 min.
  auto old_epoch = engine.eval(lt, "increase(joules[55m])", kMillisPerHour);
  ASSERT_EQ(old_epoch.vector.size(), 1u);
  EXPECT_GT(old_epoch.vector[0].value, 28000.0);
  EXPECT_LT(old_epoch.vector[0].value, 33000.0);
}

TEST(LongTerm, RetentionDropsAncientData) {
  LongTermConfig config;
  config.downsample_after_ms = kMillisPerHour;
  config.resolution_ms = 5 * kMillisPerMinute;
  config.retention_ms = 24 * kMillisPerHour;
  LongTermStore lt(config);
  TimeSeriesStore hot;
  hot.append(named("m", "n1"), 0, 1);
  hot.append(named("m", "n1"), 30 * kMillisPerHour, 2);
  lt.sync_from(hot);
  lt.compact(30 * kMillisPerHour);
  auto series = lt.select({}, 0, 40 * kMillisPerHour);
  ASSERT_EQ(series.size(), 1u);
  // Sample at t=0 is beyond 24 h retention at t=30 h.
  EXPECT_EQ(series[0].samples().size(), 1u);
  EXPECT_EQ(series[0].samples()[0].t, 30 * kMillisPerHour);
}

TEST(LongTerm, SelectMergesAcrossEpochBoundary) {
  LongTermConfig config;
  config.downsample_after_ms = kMillisPerHour;
  config.resolution_ms = 10 * kMillisPerMinute;
  LongTermStore lt(config);
  TimeSeriesStore hot;
  for (int i = 0; i < 240; ++i) {
    hot.append(named("m", "n1"), i * 30000, i);
  }
  lt.sync_from(hot);
  lt.compact(2 * kMillisPerHour);
  auto series = lt.select({}, 0, 3 * kMillisPerHour);
  ASSERT_EQ(series.size(), 1u);
  // Strictly increasing timestamps across the merge.
  for (std::size_t i = 1; i < series[0].samples().size(); ++i) {
    EXPECT_GT(series[0].samples()[i].t, series[0].samples()[i - 1].t);
  }
}

TEST(LongTerm, SplicedPointsStayZeroUnderCompactionCadence) {
  // The compaction invariant: raw data is only purged up to a boundary the
  // whole ladder has aggregated past, so the synthesised history and the
  // raw tail never overlap and select() splices no decoded points. Run a
  // realistic cadence — scrape, sync, compact every 10 min, aggressive hot
  // retention — and check the counter stays at zero end to end.
  LongTermConfig config;
  config.downsample_after_ms = common::kMillisPerHour;
  config.levels = {{5 * kMillisPerMinute, 0}, {kMillisPerHour, 0}};
  LongTermStore lt(config);
  TimeSeriesStore hot;
  TimestampMs t = 0;
  for (int cycle = 0; cycle < 72; ++cycle) {
    TimestampMs cycle_end = TimestampMs{cycle + 1} * 10 * kMillisPerMinute;
    for (; t < cycle_end; t += 30000) {
      hot.append(named("m", "n1"), t, static_cast<double>(t / 30000));
      hot.append(named("m", "n2"), t, 7.0);
    }
    lt.sync_from(hot);
    lt.compact(cycle_end);
    hot.purge_before(cycle_end - 20 * kMillisPerMinute);
  }

  auto series = lt.select({}, 0, 12 * common::kMillisPerHour);
  ASSERT_EQ(series.size(), 2u);
  for (const auto& view : series) {
    const auto& samples = view.samples();
    ASSERT_FALSE(samples.empty());
    EXPECT_EQ(samples.front().t, 0);
    EXPECT_EQ(samples.back().t, t - 30000);
    for (std::size_t i = 1; i < samples.size(); ++i) {
      EXPECT_GT(samples[i].t, samples[i - 1].t);
    }
  }
  auto stats = lt.select_stats();
  EXPECT_EQ(stats.spliced_points_copied, 0u);
  EXPECT_GT(stats.raw_points_scanned, 0u);
}

TEST(LongTerm, PerLevelRetentionPurgesExactHorizons) {
  LongTermConfig config;
  config.downsample_after_ms = common::kMillisPerHour;
  config.levels = {{5 * kMillisPerMinute, 2 * common::kMillisPerHour},
                   {kMillisPerHour, 10 * common::kMillisPerHour}};
  LongTermStore lt(config);
  TimeSeriesStore hot;
  for (TimestampMs t = 0; t <= 12 * common::kMillisPerHour; t += 30000) {
    hot.append(named("m", "n1"), t, 1);
  }
  lt.sync_from(hot);
  lt.compact(12 * common::kMillisPerHour);

  // 5m level keeps exactly the bucket ends in [10h, 12h] (25 rows), the
  // 1h level exactly [2h, 12h] (11 rows).
  auto fine = lt.select_agg(5 * kMillisPerMinute, {},
                            10 * common::kMillisPerHour,
                            12 * common::kMillisPerHour);
  ASSERT_TRUE(fine.has_value());
  ASSERT_EQ(fine->size(), 1u);
  EXPECT_EQ((*fine)[0].buckets.size(), 25u);
  EXPECT_EQ((*fine)[0].buckets.front().t, 10 * common::kMillisPerHour);
  EXPECT_EQ((*fine)[0].buckets.back().t, 12 * common::kMillisPerHour);

  auto coarse = lt.select_agg(kMillisPerHour, {}, 2 * common::kMillisPerHour,
                              12 * common::kMillisPerHour);
  ASSERT_TRUE(coarse.has_value());
  ASSERT_EQ(coarse->size(), 1u);
  EXPECT_EQ((*coarse)[0].buckets.size(), 11u);
  EXPECT_EQ((*coarse)[0].buckets.front().t, 2 * common::kMillisPerHour);

  // One bucket past either horizon: coverage can no longer be promised.
  EXPECT_FALSE(lt.select_agg(5 * kMillisPerMinute, {},
                             10 * common::kMillisPerHour - 5 * kMillisPerMinute,
                             12 * common::kMillisPerHour)
                   .has_value());
  EXPECT_FALSE(lt.select_agg(kMillisPerHour, {}, kMillisPerHour,
                             12 * common::kMillisPerHour)
                   .has_value());
  EXPECT_EQ(lt.downsampled_stats().num_samples, 25u + 11u);
}

TEST(LongTerm, StatsReflectBothTiers) {
  LongTermConfig config;
  config.downsample_after_ms = kMillisPerHour;
  LongTermStore lt(config);
  TimeSeriesStore hot;
  for (int i = 0; i < 240; ++i) {
    hot.append(named("m", "n1"), i * 30000, i);
  }
  lt.sync_from(hot);
  StorageStats before = lt.stats();
  lt.compact(2 * kMillisPerHour);
  StorageStats after = lt.stats();
  EXPECT_EQ(before.num_samples, 240u);
  EXPECT_LT(after.num_samples, before.num_samples);  // downsampling shrank it
  EXPECT_GT(lt.downsampled_stats().num_samples, 0u);
}

}  // namespace
}  // namespace ceems::tsdb
