file(REMOVE_RECURSE
  "CMakeFiles/bench_tsdb.dir/bench_tsdb.cpp.o"
  "CMakeFiles/bench_tsdb.dir/bench_tsdb.cpp.o.d"
  "bench_tsdb"
  "bench_tsdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tsdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
