// Grafana dashboard provisioning (the artefacts behind Fig. 2): generates
// real Grafana dashboard JSON (schema v36-ish) wired to a Prometheus data
// source that points at the CEEMS LB and to the CEEMS API server. Drop the
// output into Grafana's provisioning directory and the paper's three
// dashboards appear. The upstream CEEMS repo ships equivalent JSON; here
// it is generated so panel queries always match this build's metric names.
#pragma once

#include <string>

#include "common/json.h"

namespace ceems::dashboard {

// Fig. 2a+2b: per-user aggregate tiles and the unit table.
common::Json user_dashboard_json(const std::string& prometheus_ds_uid,
                                 const std::string& api_ds_uid);

// Fig. 2c: time-series panels for one job (templated $uuid variable).
common::Json job_dashboard_json(const std::string& prometheus_ds_uid);

// Operator dashboard: cluster power, per-group attribution, alerts.
common::Json operator_dashboard_json(const std::string& prometheus_ds_uid);

// Writes all three to <dir>/ceems-{user,job,operator}.json. Returns false
// on IO failure.
bool export_grafana_dashboards(const std::string& dir,
                               const std::string& prometheus_ds_uid = "ceems-lb",
                               const std::string& api_ds_uid = "ceems-api");

}  // namespace ceems::dashboard
