// Database: named tables + WAL + backups + Litestream-style replication.
//
// Concurrency contract (mirrors the paper's SQLite justification, §II-D):
// exactly one writer thread — the API server's updater — mutates the
// database; any number of reader threads query concurrently. A
// shared_mutex enforces it: queries take shared locks, mutations exclusive.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>

#include "reldb/table.h"
#include "reldb/wal.h"

namespace ceems::reldb {

class Database {
 public:
  // `wal_path` empty = in-memory only (no durability). Otherwise the WAL is
  // appended to that file and replayed by open().
  explicit Database(std::string wal_path = "");

  // Replays an existing WAL file into a fresh Database.
  static std::unique_ptr<Database> open(const std::string& wal_path);

  void create_table(const std::string& name, Schema schema);
  bool has_table(const std::string& name) const;

  void upsert(const std::string& table, Row row);
  bool erase(const std::string& table, const Value& primary_key);

  std::optional<Row> get(const std::string& table,
                         const Value& primary_key) const;
  ResultSet query(const std::string& table, const Query& query) const;
  std::size_t table_size(const std::string& table) const;
  const Schema* table_schema(const std::string& table) const;
  void create_index(const std::string& table, const std::string& column);

  // Punctual backup (§II-C "in-built punctual backup solution"): writes a
  // fresh WAL capturing the current state; restore via open().
  void backup_to(const std::string& path) const;

  uint64_t last_seq() const;
  // Entries with seq > after (replication pull). Kept in memory.
  std::vector<WalEntry> entries_since(uint64_t after) const;

 private:
  void apply(const WalEntry& entry, bool log);
  Table& table_ref(const std::string& name);
  const Table& table_ref(const std::string& name) const;

  mutable std::shared_mutex mu_;
  std::map<std::string, Table> tables_;
  std::vector<WalEntry> wal_;  // in-memory tail for replication
  uint64_t seq_ = 0;
  std::string wal_path_;
};

// Litestream analogue: continuously ships the primary's WAL tail into a
// replica Database. sync() is cheap and idempotent; call it on a timer.
class Replicator {
 public:
  Replicator(const Database& primary, Database& replica)
      : primary_(primary), replica_(replica) {}

  // Applies all new entries; returns how many were shipped.
  std::size_t sync();

 private:
  const Database& primary_;
  Database& replica_;
  uint64_t shipped_ = 0;
};

}  // namespace ceems::reldb
