// Batch scheduler: FCFS with EASY backfill over the simulated cluster.
// Starting a job creates its workload (and cgroup) on every assigned node;
// ending it tears the workloads down and finalizes the accounting record —
// the lifecycle whose traces the CEEMS exporter observes.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "slurm/cluster.h"
#include "slurm/job.h"
#include "slurm/slurmdbd.h"

namespace ceems::slurm {

struct SchedulerConfig {
  // Multifactor-priority-style fair share: pending jobs are ordered by
  // 2^(-decayed_usage/weight) per user instead of strict FCFS, so heavy
  // recent consumers yield to light ones (SLURM's PriorityDecayHalfLife).
  bool fairshare = false;
  int64_t usage_halflife_ms = 24 * common::kMillisPerHour;
};

class Scheduler {
 public:
  Scheduler(Cluster& cluster, SlurmDbd& dbd, uint64_t seed,
            SchedulerConfig config = {});

  // Decayed cpu-seconds charged to a user so far (fairshare bookkeeping).
  double user_usage(const std::string& user) const;

  // Enqueues a job; returns its id. Throws if the request can never be
  // satisfied by the partition (oversized).
  int64_t submit(const JobRequest& request);

  // Cancels a pending or running job.
  bool cancel(int64_t job_id);

  // One scheduling pass: finish due jobs, then start pending jobs (FCFS
  // head-of-line; backfill behind it with jobs that fit now and cannot
  // delay the head job's earliest start).
  void step();

  std::size_t pending_count() const { return queue_.size(); }
  std::size_t running_count() const { return running_.size(); }
  int64_t next_job_id() const { return next_job_id_; }

  // Free CPUs across a partition (for tests and the workload generator's
  // load targeting).
  int free_cpus(const std::string& partition) const;

 private:
  struct NodeFree {
    int cpus = 0;
    int64_t memory_bytes = 0;
    std::set<int> gpu_ordinals;
  };
  struct RunningJob {
    Job job;
    common::TimestampMs planned_end_ms = 0;
    JobState final_state = JobState::kCompleted;
  };

  // Tries to place `request`; fills hostnames/gpu ordinals. Does not mutate
  // free state when placement fails.
  bool try_place(const JobRequest& request,
                 std::vector<std::string>& hostnames,
                 std::vector<std::vector<int>>& gpus);
  void start_job(Job& job);
  void finish_job(RunningJob& running, JobState state);
  // Earliest time the given request could start if every running job ends
  // at its planned end (for backfill reservation).
  common::TimestampMs earliest_start_estimate(const JobRequest& request) const;

  // Applies the halflife decay and sorts the queue by fairshare priority.
  void apply_fairshare_order();

  Cluster& cluster_;
  SlurmDbd& dbd_;
  common::Rng rng_;
  SchedulerConfig config_;
  int64_t next_job_id_ = 1000;
  std::map<std::string, double> usage_cpu_seconds_;
  common::TimestampMs last_decay_ms_ = -1;

  std::deque<Job> queue_;  // pending, FCFS order
  std::map<int64_t, RunningJob> running_;
  std::map<std::string, NodeFree> free_;
};

}  // namespace ceems::slurm
