// Prometheus text exposition format: the wire format between the CEEMS
// exporter and the TSDB scrape manager.
//
//   # HELP node_cpu_seconds_total Seconds the CPUs spent in each mode.
//   # TYPE node_cpu_seconds_total counter
//   node_cpu_seconds_total{cpu="0",mode="user"} 12345.6
//
// encode_families produces that text; parse_exposition reads it back into
// samples (with the family name folded into __name__). The parser is
// tolerant the same way Prometheus is: unknown comment lines are skipped,
// but malformed sample lines raise ExpositionParseError so scrape failures
// become visible (up == 0) rather than silently dropped data.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "metrics/model.h"

namespace ceems::metrics {

class ExpositionParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

std::string encode_families(const std::vector<MetricFamily>& families);

struct ParsedExposition {
  std::vector<Sample> samples;  // labels include __name__
  // HELP/TYPE metadata keyed by family name, preserved for re-export.
  std::vector<MetricFamily> families;
};

ParsedExposition parse_exposition(std::string_view text);

// Escapes a label value for the exposition format (\, ", \n).
std::string escape_label_value(std::string_view value);
// Inverse of escape_label_value: resolves \\, \", \n escape sequences (an
// unknown escape yields the escaped character verbatim, matching the
// Prometheus parser's tolerance). The scrape-side parser uses this, so
// encode → parse round-trips every label value byte-for-byte.
std::string unescape_label_value(std::string_view value);

}  // namespace ceems::metrics
