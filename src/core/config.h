// Single-file YAML configuration (§II-D: "All the CEEMS components can be
// configured in a single YAML file where each component will read its
// relevant configuration"). load_stack_config reads the sections shared by
// every component; load_sim_config reads the simulation-only section.
#pragma once

#include <string>

#include "core/stack.h"

namespace ceems::core {

struct SimSetupConfig {
  double cluster_scale = 0.02;   // fraction of the 1400-node Jean-Zay
  double jobs_per_day = 3000;
  uint64_t seed = 42;
  int64_t sim_step_ms = 10 * common::kMillisPerSecond;
};

// Parses the `simulation:` section.
SimSetupConfig load_sim_config(const common::Json& root);

// Parses the `ceems:` section (scrape, rules, updater, longterm, lb,
// emissions, auth). Unknown keys are ignored; missing keys keep defaults.
StackConfig load_stack_config(const common::Json& root);

// Convenience: parse both from YAML text. Throws YamlParseError.
struct LoadedConfig {
  SimSetupConfig sim;
  StackConfig stack;
};
LoadedConfig parse_config_text(const std::string& yaml_text);

// A commented reference config, used by the quickstart example and tests.
std::string reference_config_yaml();

}  // namespace ceems::core
