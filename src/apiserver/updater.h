// API-server updater (§II-B.b / §II-C): the single writer of the CEEMS DB.
// Each cycle it (1) polls every resource-manager adapter for new/changed
// compute units, (2) batch-queries the TSDB (long-term store) for the
// window's worth of per-unit metrics and folds them into the units'
// aggregate columns, and (3) optionally deletes the TSDB series of units
// shorter than a cutoff — the cardinality-reduction knob of §II-C.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "apiserver/resource_manager.h"
#include "reldb/database.h"
#include "tsdb/promql_eval.h"
#include "tsdb/storage.h"

namespace ceems::apiserver {

struct UpdaterConfig {
  int64_t interval_ms = 60 * common::kMillisPerSecond;
  // Recording-rule series the operator's rules produce (§III-A): per-unit
  // CPU-side power and GPU-side power, in watts, labelled by uuid.
  std::string cpu_power_metric = "ceems_job_power_watts";
  std::string gpu_power_metric = "ceems_job_gpu_power_watts";
  std::string gpu_util_metric = "ceems_job_gpu_util";
  // Emission factor series + preferred provider.
  std::string emission_metric = "ceems_emissions_gCo2_kWh";
  std::string emission_provider = "rte";
  // Units shorter than this get their TSDB series deleted at end of job
  // (0 = never delete).
  int64_t small_unit_cutoff_ms = 0;
  // When > 0, aggregate queries snap to this grid: the evaluation instant
  // rounds down to a multiple, so window length and instant are both
  // grid-aligned and the increase()/avg_over_time() batch queries tile
  // the long-term store's aggregate buckets — the resolution-aware
  // planner then answers them from the ladder instead of scanning raw
  // samples. Set it to the ladder's finest resolution; 0 keeps the
  // legacy evaluate-at-now behaviour.
  int64_t align_window_ms = 0;
};

struct UpdateStats {
  std::size_t units_upserted = 0;
  std::size_t units_aggregated = 0;
  std::size_t series_deleted = 0;
};

class Updater {
 public:
  Updater(reldb::Database& db, std::shared_ptr<const tsdb::Queryable> tsdb,
          tsdb::StorePtr hot_store_for_cleanup,
          std::vector<AdapterPtr> adapters, common::ClockPtr clock,
          UpdaterConfig config = {});

  // One update cycle at the current clock time.
  UpdateStats update_once();

  void start();
  void stop();

 private:
  void poll_managers(common::TimestampMs now, UpdateStats& stats);
  void update_aggregates(common::TimestampMs now, UpdateStats& stats);
  void cleanup_small_units(UpdateStats& stats);

  reldb::Database& db_;
  std::shared_ptr<const tsdb::Queryable> tsdb_;
  tsdb::StorePtr hot_store_;
  std::vector<AdapterPtr> adapters_;
  common::ClockPtr clock_;
  UpdaterConfig config_;
  tsdb::promql::Engine engine_;

  common::TimestampMs last_poll_ms_ = 0;
  common::TimestampMs last_agg_ms_ = -1;
  std::vector<Unit> newly_ended_;  // candidates for series cleanup

  std::atomic<bool> running_{false};
  std::thread loop_thread_;
};

}  // namespace ceems::apiserver
