#include "slurm/cluster_sim.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ceems::slurm {

JeanZayScale JeanZayScale::scaled(double factor) const {
  auto scale = [factor](int count) {
    return std::max(1, static_cast<int>(std::lround(count * factor)));
  };
  JeanZayScale out;
  out.intel_cpu_nodes = scale(intel_cpu_nodes);
  out.amd_cpu_nodes = scale(amd_cpu_nodes);
  out.v100_nodes = scale(v100_nodes);
  out.a100_nodes = scale(a100_nodes);
  out.h100_nodes = scale(h100_nodes);
  return out;
}

std::unique_ptr<Cluster> make_jean_zay_cluster(common::ClockPtr clock,
                                               const JeanZayScale& scale,
                                               uint64_t seed) {
  auto cluster = std::make_unique<Cluster>("jean-zay", std::move(clock), seed);
  cluster->add_partition("cpu_p1", "jzcpu", scale.intel_cpu_nodes,
                         node::make_intel_cpu_node);
  cluster->add_partition("cpu_p2", "jzamd", scale.amd_cpu_nodes,
                         node::make_amd_cpu_node);
  cluster->add_partition("gpu_p1", "jzv100-", scale.v100_nodes,
                         node::make_v100_node);
  cluster->add_partition("gpu_p4", "jza100-", scale.a100_nodes,
                         node::make_a100_node);
  cluster->add_partition("gpu_p6", "jzh100-", scale.h100_nodes,
                         node::make_h100_node);
  return cluster;
}

WorkloadGenConfig make_jean_zay_workload_config(const JeanZayScale& scale,
                                                double jobs_per_day) {
  WorkloadGenConfig config;
  config.jobs_per_day = jobs_per_day;
  double total = scale.total_nodes();
  // Multi-node jobs never exceed the partition (matters for small test
  // slices of the cluster).
  int intel_max = std::min(8, scale.intel_cpu_nodes);
  int amd_max = std::min(8, scale.amd_cpu_nodes);
  config.partitions = {
      {"cpu_p1", scale.intel_cpu_nodes / total, false, intel_max, 40, 0,
       192LL << 30},
      {"cpu_p2", scale.amd_cpu_nodes / total, false, amd_max, 128, 0,
       256LL << 30},
      {"gpu_p1", scale.v100_nodes / total * 1.5, true, 1, 40, 4, 384LL << 30},
      {"gpu_p4", scale.a100_nodes / total * 1.5, true, 1, 128, 8, 512LL << 30},
      {"gpu_p6", scale.h100_nodes / total * 1.5, true, 1, 48, 4, 512LL << 30},
  };
  return config;
}

ClusterSim::ClusterSim(std::shared_ptr<common::SimClock> clock,
                       std::unique_ptr<Cluster> cluster,
                       WorkloadGenConfig gen_config, uint64_t seed)
    : clock_(std::move(clock)),
      cluster_(std::move(cluster)),
      generator_(std::move(gen_config)) {
  scheduler_ = std::make_unique<Scheduler>(*cluster_, dbd_, seed);
}

void ClusterSim::step(int64_t step_ms) {
  for (auto& request : generator_.arrivals(step_ms)) {
    try {
      scheduler_->submit(request);
      ++jobs_submitted_;
    } catch (const std::exception& e) {
      CEEMS_LOG_WARN("cluster-sim") << "rejected job: " << e.what();
    }
  }
  scheduler_->step();
  cluster_->step_nodes(step_ms);
  clock_->advance(step_ms);
}

void ClusterSim::run_for(
    int64_t duration_ms, int64_t step_ms,
    const std::function<void(common::TimestampMs)>& on_step) {
  common::TimestampMs deadline = clock_->now_ms() + duration_ms;
  while (clock_->now_ms() < deadline) {
    step(step_ms);
    if (on_step) on_step(clock_->now_ms());
  }
}

}  // namespace ceems::slurm
