#include "soak/runner.h"

#include <cinttypes>
#include <memory>

#include "common/json.h"
#include "common/strutil.h"
#include "core/stack.h"
#include "faults/plan.h"
#include "simfs/durable_dir.h"
#include "slurm/cluster_sim.h"
#include "tsdb/promql_eval.h"

namespace ceems::soak {
namespace {

using common::TimestampMs;

// Fixed epoch shared with the scale benches: counters must be functions
// of (scenario, seed) only, so the clock never starts from wall time.
constexpr int64_t kSoakEpochMs = 1700000000000LL;

// The misbehaving exporter's exposition body. Outside the storm window it
// is a healthy one-series target; inside, it explodes into `series` label
// sets whose values are pure functions of (id, wave), with the wave
// churning every churn_sweeps scrapes so cardinality keeps growing.
std::string bad_exporter_body(const Scenario& scenario, int64_t rel_ms) {
  std::string out;
  out += "# TYPE ";
  out += kHeartbeatMetricName;
  out += " gauge\n";
  out += kHeartbeatMetricName;
  out += " 1\n";
  const CardinalityStorm& storm = *scenario.cardinality;
  if (!storm.window.contains(rel_ms)) return out;
  int64_t wave = (rel_ms - storm.window.start_ms) /
                 (storm.churn_sweeps * scenario.scrape_interval_ms);
  out += "# TYPE ";
  out += kStormMetricName;
  out += " gauge\n";
  out.reserve(out.size() + static_cast<std::size_t>(storm.series) * 56);
  for (int i = 0; i < storm.series; ++i) {
    out += kStormMetricName;
    out += "{id=\"";
    out += std::to_string(i);
    out += "\",wave=\"";
    out += std::to_string(wave);
    out += "\"} ";
    out += std::to_string((i * 31 + wave * 17) % 997);
    out += "\n";
  }
  return out;
}

// Canonical checkpoint queries: a mix the dashboards actually issue —
// fleet health, per-nodegroup power, and two window queries over the
// long-term store. Their points-scanned deltas are the deterministic
// stand-in for query latency (wall time is meaningless in CI).
struct CanonicalQuery {
  const char* expr;
  bool range;            // instant at now vs range over the trailing span
  int64_t span_ms;
  int64_t step_ms;
};

constexpr CanonicalQuery kCanonicalQueries[] = {
    {"sum(up)", false, 0, 0},
    {"sum by (nodegroup) (ceems_job_power_watts)", false, 0, 0},
    {"sum(avg_over_time(ceems_ipmi_dcmi_current_watts[5m]))", true,
     15 * common::kMillisPerMinute, common::kMillisPerMinute},
    {"sum(rate(ceems_rapl_package_joules_total[2m]))", true,
     10 * common::kMillisPerMinute, common::kMillisPerMinute},
};

uint64_t longterm_points(const tsdb::LongTermStore& store) {
  auto stats = store.select_stats();
  uint64_t points = stats.raw_points_scanned;
  for (uint64_t level : stats.level_points_scanned) points += level;
  return points;
}

}  // namespace

std::string SoakReport::replay_command() const {
  return "ceems_soak --scenario " + scenario.name + " --nodes " +
         std::to_string(scenario.nodes) + " --seed " +
         std::to_string(scenario.seed);
}

SoakRunner::SoakRunner(Scenario scenario, SoakOptions options)
    : scenario_(std::move(scenario)), options_(options) {}

SoakReport SoakRunner::run() {
  SoakReport report;
  report.scenario = scenario_;
  auto log = [&](const char* fmt, auto... args) {
    if (options_.log) {
      std::fprintf(options_.log, "[soak %s seed %" PRIu64 "] ",
                   scenario_.name.c_str(), scenario_.seed);
      std::fprintf(options_.log, fmt, args...);
      std::fputc('\n', options_.log);
      std::fflush(options_.log);
    }
  };

  // --- fleet + stack ---
  auto clock = common::make_sim_clock(kSoakEpochMs);
  const TimestampMs start_ms = clock->now_ms();
  slurm::JeanZayScale scale =
      slurm::JeanZayScale{}.scaled(scenario_.nodes / 1400.0);
  auto gen_config = slurm::make_jean_zay_workload_config(
      scale, scenario_.effective_jobs_per_day());
  gen_config.seed = scenario_.seed;
  slurm::ClusterSim sim(
      clock, slurm::make_jean_zay_cluster(clock, scale, scenario_.seed),
      gen_config, scenario_.seed);
  report.node_count = sim.cluster().node_count();

  auto plan = std::make_shared<faults::FaultPlan>(scenario_.seed);
  plan->set_clock(clock);

  core::StackConfig config;
  config.scrape_interval_ms = scenario_.scrape_interval_ms;
  config.http_exporter_count = 0;  // local transport: one process, any fleet
  config.fault_plan = plan;
  // Only crash_restart scenarios get a WAL-backed hot store: every other
  // scenario keeps the purely in-memory store, so its counters stay
  // bit-identical to what BENCH_soak.json recorded before durability
  // existed.
  std::shared_ptr<simfs::SimDurableDir> wal_dir;
  if (scenario_.crash_restart) {
    wal_dir = std::make_shared<simfs::SimDurableDir>();
    config.hot_durable_dir = wal_dir;
    config.hot_wal.segment_bytes = 1u << 20;  // several rotations per run
  }
  core::CeemsStack stack(sim, config);

  if (scenario_.cardinality) {
    tsdb::ScrapeTarget target;
    target.labels = metrics::Labels{{"instance", "soak-bad-exporter"},
                                    {"cluster", sim.cluster().name()}};
    Scenario scenario_copy = scenario_;
    auto clock_copy = clock;
    target.local_fetch = [scenario_copy, clock_copy, start_ms] {
      return bad_exporter_body(scenario_copy, clock_copy->now_ms() - start_ms);
    };
    stack.scraper().add_target(std::move(target));
  }

  const bool lb_running = scenario_.lb.has_value();
  if (lb_running) stack.start_servers();

  InvariantChecker checker(scenario_, report.node_count,
                           stack.scraper().target_count());
  tsdb::promql::EngineOptions engine_options;
  engine_options.query_cache_capacity = 0;  // every checkpoint scans afresh
  tsdb::promql::Engine engine(engine_options);

  log("fleet up: %d nodes, %zu scrape targets, %s jobs/day %.0f",
      report.node_count, stack.scraper().target_count(),
      common::format_duration_ms(scenario_.duration_ms).c_str(),
      scenario_.effective_jobs_per_day());

  // --- storm toggles ---
  bool flap_on = false, outage_on = false, churn_on = false, lb_on = false;
  const double base_jobs_per_day = scenario_.effective_jobs_per_day();
  auto apply_storms = [&](int64_t rel_ms) {
    if (scenario_.flap) {
      bool want = scenario_.flap->window.contains(rel_ms);
      if (want != flap_on) {
        flap_on = want;
        if (want) {
          faults::SiteFaults faults;
          faults.connect_timeout = scenario_.flap->connect_timeout;
          faults.flap = scenario_.flap->fraction;
          faults.flap_period_ms = 3 * common::kMillisPerMinute;
          faults.flap_down_ms = common::kMillisPerMinute;
          plan->configure("scrape.target", faults);
        } else {
          plan->clear("scrape.target");
        }
        log("t=+%s flap storm %s", common::format_duration_ms(rel_ms).c_str(),
            want ? "ON" : "off");
      }
    }
    if (scenario_.outage) {
      bool want = scenario_.outage->window.contains(rel_ms);
      if (want != outage_on) {
        outage_on = want;
        if (want) {
          faults::SiteFaults faults;
          faults.unavailable = 1.0;  // every provider fully dark
          plan->configure("emissions.provider", faults);
        } else {
          plan->clear("emissions.provider");
        }
        log("t=+%s emissions outage %s",
            common::format_duration_ms(rel_ms).c_str(), want ? "ON" : "off");
      }
    }
    if (scenario_.churn) {
      bool want = scenario_.churn->window.contains(rel_ms);
      if (want != churn_on) {
        churn_on = want;
        sim.generator().set_jobs_per_day(
            want ? base_jobs_per_day * scenario_.churn->factor
                 : base_jobs_per_day);
        log("t=+%s churn storm %s (%.0f jobs/day)",
            common::format_duration_ms(rel_ms).c_str(), want ? "ON" : "off",
            sim.generator().config().jobs_per_day);
      }
    }
    if (scenario_.lb) {
      bool want = scenario_.lb->window.contains(rel_ms);
      if (want != lb_on) {
        lb_on = want;
        if (want) {
          faults::SiteFaults faults;
          faults.connect_timeout = scenario_.lb->connect_timeout;
          faults.flap = scenario_.lb->flap_fraction;
          faults.flap_period_ms = 90 * common::kMillisPerSecond;
          faults.flap_down_ms = 40 * common::kMillisPerSecond;
          plan->configure("lb.backend", faults);
        } else {
          plan->clear("lb.backend");
        }
        log("t=+%s lb storm %s", common::format_duration_ms(rel_ms).c_str(),
            want ? "ON" : "off");
      }
    }
  };

  // --- per-checkpoint work: retention purge, invariants, canonical
  // queries with per-query points-scanned accounting ---
  auto checkpoint = [&](TimestampMs now) {
    stack.hot_store()->purge_before(now - scenario_.hot_retention_ms);
    // WAL-backed runs fold the store into a snapshot and truncate the
    // log at every checkpoint, so replay after a crash covers at most
    // one checkpoint interval.
    if (stack.durable_tsdb() && !stack.durable_tsdb()->checkpoint()) {
      report.violations.push_back(
          "durable checkpoint failed at t=+" +
          common::format_duration_ms(now - start_ms));
    }
    checker.at_checkpoint(stack, now);
    auto longterm = stack.longterm();
    for (const CanonicalQuery& query : kCanonicalQueries) {
      uint64_t before = longterm_points(*longterm);
      try {
        if (query.range) {
          engine.eval_range(*longterm, query.expr,
                            std::max(start_ms, now - query.span_ms), now,
                            query.step_ms);
        } else {
          engine.eval(*longterm, query.expr, now);
        }
      } catch (const tsdb::promql::EvalError& error) {
        report.violations.push_back(std::string("canonical query '") +
                                    query.expr + "' failed: " + error.what());
      }
      uint64_t delta = longterm_points(*longterm) - before;
      checker.record_query_points(delta);
      report.points_scanned += delta;
    }
    auto hot = stack.hot_store()->stats();
    log("t=+%s checkpoint: bytes=%zu series=%zu samples=%zu "
        "faults=%" PRIu64 " dropped=%" PRIu64,
        common::format_duration_ms(now - start_ms).c_str(),
        hot.approx_bytes + hot.symbol_bytes, hot.num_series, hot.num_samples,
        plan->stats().faults, stack.scraper().stats().scrapes_failed);
  };

  // --- crash_restart storm: power-cut the hot store's durable dir and
  // recover it in place from snapshot + WAL replay, asserting lossless
  // recovery. Crashes land between pipeline steps (the stack is
  // quiesced), and every append group-committed before returning, so a
  // torn tail or any divergence is an invariant violation.
  auto hot_query_fingerprint = [&](TimestampMs now) {
    std::string out;
    for (const char* expr :
         {"sum(up)", "sum by (nodegroup) (ceems_job_power_watts)"}) {
      out += expr;
      out += ':';
      try {
        auto value = engine.eval(*stack.hot_store(), expr, now);
        if (value.kind == tsdb::promql::Value::Kind::kVector) {
          for (const auto& sample : value.vector) {
            out += sample.labels.to_string();
            out += '=';
            out += std::to_string(sample.value);
            out += ';';
          }
        } else {
          out += std::to_string(value.scalar);
          out += ';';
        }
      } catch (const tsdb::promql::EvalError& error) {
        out += std::string("error ") + error.what() + ";";
      }
    }
    return out;
  };
  auto do_crash_restart = [&](TimestampMs now, int64_t rel_ms) {
    auto pre = stack.hot_store()->stats();
    std::string pre_queries = hot_query_fingerprint(now);
    wal_dir->crash();  // the power cut: unsynced bytes vanish
    auto result = stack.recover_hot_store();
    ++report.crash_restarts;
    report.wal_records_replayed += result.replay.records_applied;
    std::string when = common::format_duration_ms(rel_ms);
    if (!result.replay.error.empty())
      report.violations.push_back("crash_restart t=+" + when +
                                  ": replay error: " + result.replay.error);
    if (result.replay.torn_tail)
      report.violations.push_back("crash_restart t=+" + when +
                                  ": torn tail at a quiesced crash point");
    auto post = stack.hot_store()->stats();
    if (post.num_series != pre.num_series ||
        post.num_samples != pre.num_samples)
      report.violations.push_back(
          "crash_restart t=+" + when + ": recovered " +
          std::to_string(post.num_series) + " series / " +
          std::to_string(post.num_samples) + " samples, expected " +
          std::to_string(pre.num_series) + " / " +
          std::to_string(pre.num_samples));
    if (hot_query_fingerprint(now) != pre_queries)
      report.violations.push_back(
          "crash_restart t=+" + when +
          ": canonical hot-store queries changed across recovery");
    log("t=+%s crash_restart: snapshot %zu + %" PRIu64
        " wal records replayed; %zu series / %zu samples intact",
        when.c_str(), result.snapshot_samples, result.replay.records_applied,
        post.num_series, post.num_samples);
  };

  auto lb_probe = [&] {
    http::Request request;
    request.method = "GET";
    request.target = "/api/v1/query?query=sum(up)";
    request.headers["X-Grafana-User"] = "admin";
    // Failures during the storm window are the point; the breaker's
    // verdict is read in at_recovery_end().
    stack.load_balancer().handle_proxy(request);
  };

  // --- main loop: scenario plus the storm-free recovery tail ---
  const int64_t total_ms = scenario_.duration_ms + scenario_.recovery_ms;
  TimestampMs next_update = start_ms;
  TimestampMs next_checkpoint = start_ms + scenario_.checkpoint_every_ms;
  const int64_t card_check_rel =
      scenario_.cardinality
          ? scenario_.cardinality->window.end_ms +
                2 * scenario_.scrape_interval_ms
          : -1;
  bool card_checked = false;
  // First crash one period into the storm window, then on cadence.
  int64_t next_crash_rel =
      scenario_.crash_restart ? scenario_.crash_restart->window.start_ms +
                                    scenario_.crash_restart->every_ms
                              : -1;

  sim.run_for(total_ms, scenario_.step_ms, [&](TimestampMs now) {
    int64_t rel_ms = now - start_ms;
    apply_storms(rel_ms);
    stack.pipeline_step();
    if (now >= next_update) {
      stack.update_api();
      next_update = now + common::kMillisPerMinute;
    }
    // Grafana-like traffic through the LB: steady probes, plus one per
    // step during the storm so the circuit breakers see enough
    // consecutive failures to actually trip (and enough post-storm
    // successes to re-close — the recovery invariant is not vacuous).
    if (lb_running &&
        (lb_on || rel_ms % (30 * common::kMillisPerSecond) == 0))
      lb_probe();
    if (!card_checked && card_check_rel >= 0 && rel_ms >= card_check_rel) {
      card_checked = true;
      checker.after_cardinality_storm(stack, now);
    }
    if (now >= next_checkpoint) {
      checkpoint(now);
      next_checkpoint += scenario_.checkpoint_every_ms;
    }
    if (scenario_.crash_restart && rel_ms >= next_crash_rel &&
        scenario_.crash_restart->window.contains(rel_ms)) {
      do_crash_restart(now, rel_ms);
      next_crash_rel = rel_ms + scenario_.crash_restart->every_ms;
    }
  });

  // --- recovery verdict + counters ---
  stack.update_api();
  checker.at_recovery_end(stack, clock->now_ms(), lb_running);
  report.ok = checker.finish();
  auto& violations = checker.violations();
  report.violations.insert(report.violations.end(), violations.begin(),
                           violations.end());
  if (!report.violations.empty()) report.ok = false;

  auto scrape = stack.scraper().stats();
  report.samples_ingested = scrape.samples_ingested;
  report.dropped_scrapes = scrape.scrapes_failed;
  report.stale_markers = scrape.stale_markers;
  report.scrape_retries = scrape.retries;
  report.faults_injected = plan->stats().faults;
  report.queries_run = checker.queries_run();
  report.query_points_p99 = checker.query_points_p99();
  report.peak_bytes = checker.peak_bytes();
  report.max_series = checker.max_series();
  report.units_total = stack.db().table_size(apiserver::kUnitsTable);
  report.jobs_submitted = sim.jobs_submitted();
  if (lb_running) {
    for (const auto& backend : stack.load_balancer().backend_stats())
      report.circuit_opens += backend.circuit_opens;
  }

  log("done: ok=%d units=%" PRIu64 " samples=%" PRIu64 " dropped=%" PRIu64
      " stale=%" PRIu64 " peak_bytes=%zu max_series=%zu p99_points=%" PRIu64
      " circuit_opens=%" PRIu64,
      report.ok ? 1 : 0, report.units_total, report.samples_ingested,
      report.dropped_scrapes, report.stale_markers, report.peak_bytes,
      report.max_series, report.query_points_p99, report.circuit_opens);
  for (const auto& violation : report.violations)
    log("VIOLATION: %s", violation.c_str());
  return report;
}

std::string bench_json(const std::vector<SoakReport>& reports) {
  common::JsonObject context;
#ifdef NDEBUG
  context["library_build_type"] = "release";
#else
  context["library_build_type"] = "debug";
#endif
  context["harness"] = "ceems_soak";
  common::JsonArray benchmarks;
  for (const SoakReport& report : reports) {
    common::JsonObject bench;
    bench["name"] = "soak/" + report.scenario.name + "/seed" +
                    std::to_string(report.scenario.seed);
    bench["run_type"] = "iteration";
    bench["nodes"] = static_cast<uint64_t>(report.node_count);
    bench["invariants_ok"] = report.ok;
    bench["peak_bytes"] = static_cast<uint64_t>(report.peak_bytes);
    bench["max_series"] = static_cast<uint64_t>(report.max_series);
    bench["dropped_scrapes"] = report.dropped_scrapes;
    bench["samples_ingested"] = report.samples_ingested;
    bench["points_scanned"] = report.points_scanned;
    bench["query_points_p99"] = report.query_points_p99;
    bench["stale_markers"] = report.stale_markers;
    bench["units_total"] = report.units_total;
    bench["jobs_submitted"] = report.jobs_submitted;
    bench["faults_injected"] = report.faults_injected;
    bench["circuit_opens"] = report.circuit_opens;
    bench["crash_restarts"] = report.crash_restarts;
    bench["wal_records_replayed"] = report.wal_records_replayed;
    benchmarks.push_back(common::Json(std::move(bench)));
  }
  common::JsonObject root;
  root["context"] = common::Json(std::move(context));
  root["benchmarks"] = common::Json(std::move(benchmarks));
  return common::Json(std::move(root)).dump(2) + "\n";
}

bool write_bench_json(const std::string& path,
                      const std::vector<SoakReport>& reports) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (!file) return false;
  std::string text = bench_json(reports);
  std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  return std::fclose(file) == 0 && written == text.size();
}

}  // namespace ceems::soak
