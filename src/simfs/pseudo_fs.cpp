#include "simfs/pseudo_fs.h"

#include <algorithm>
#include <mutex>

#include "common/strutil.h"

namespace ceems::simfs {

std::string PseudoFs::normalize(const std::string& path) {
  std::string out = "/";
  for (const auto& part : common::split(path, '/')) {
    if (part.empty() || part == ".") continue;
    if (out.back() != '/') out += '/';
    out += part;
  }
  return out;
}

void PseudoFs::write(const std::string& path, std::string content) {
  std::unique_lock lock(mu_);
  files_[normalize(path)] = [content = std::move(content)] { return content; };
}

void PseudoFs::write_dynamic(const std::string& path,
                             std::function<std::string()> generator) {
  std::unique_lock lock(mu_);
  files_[normalize(path)] = std::move(generator);
}

std::optional<std::string> PseudoFs::read(const std::string& path) const {
  std::string norm = normalize(path);
  std::function<std::string()> generator;
  faults::FaultHook hook;
  {
    std::shared_lock lock(mu_);
    auto it = files_.find(norm);
    if (it == files_.end()) return std::nullopt;
    generator = it->second;
    hook = fault_hook_;
  }
  if (hook && hook("simfs.read", norm)) return std::nullopt;
  // Run the generator outside the lock: dynamic files may consult the node
  // simulator, which can itself be writing other files.
  return generator();
}

bool PseudoFs::exists(const std::string& path) const {
  std::string norm = normalize(path);
  std::shared_lock lock(mu_);
  if (files_.count(norm)) return true;
  // Directory existence: any file strictly under it.
  std::string prefix = norm == "/" ? norm : norm + "/";
  auto it = files_.lower_bound(prefix);
  return it != files_.end() && common::starts_with(it->first, prefix);
}

bool PseudoFs::is_dir(const std::string& path) const {
  std::string norm = normalize(path);
  std::string prefix = norm == "/" ? norm : norm + "/";
  std::shared_lock lock(mu_);
  auto it = files_.lower_bound(prefix);
  return it != files_.end() && common::starts_with(it->first, prefix);
}

std::vector<std::string> PseudoFs::list_dir(const std::string& path) const {
  std::string norm = normalize(path);
  std::string prefix = norm == "/" ? norm : norm + "/";
  std::vector<std::string> children;
  std::shared_lock lock(mu_);
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && common::starts_with(it->first, prefix); ++it) {
    std::string rest = it->first.substr(prefix.size());
    std::size_t slash = rest.find('/');
    std::string child = slash == std::string::npos ? rest : rest.substr(0, slash);
    if (children.empty() || children.back() != child)
      children.push_back(std::move(child));
  }
  // Children are unique because files_ is sorted, but a file and a subdir
  // entry could interleave; dedupe defensively.
  children.erase(std::unique(children.begin(), children.end()),
                 children.end());
  return children;
}

void PseudoFs::remove(const std::string& path) {
  std::string norm = normalize(path);
  std::string prefix = norm == "/" ? norm : norm + "/";
  std::unique_lock lock(mu_);
  files_.erase(norm);
  auto it = files_.lower_bound(prefix);
  while (it != files_.end() && common::starts_with(it->first, prefix)) {
    it = files_.erase(it);
  }
}

std::size_t PseudoFs::file_count() const {
  std::shared_lock lock(mu_);
  return files_.size();
}

void PseudoFs::set_fault_hook(faults::FaultHook hook) {
  std::unique_lock lock(mu_);
  fault_hook_ = std::move(hook);
}

std::map<std::string, int64_t> parse_flat_keyed(const std::string& content) {
  std::map<std::string, int64_t> out;
  for (const auto& line : common::split(content, '\n')) {
    auto fields = common::split_fields(line);
    if (fields.size() != 2) continue;
    if (auto value = common::parse_int64(fields[1])) out[fields[0]] = *value;
  }
  return out;
}

}  // namespace ceems::simfs
