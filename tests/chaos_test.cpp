// Chaos suite (DESIGN.md "Failure model"): drives the full CEEMS stack
// under seeded, randomized fault plans and asserts the recovery invariants
//   1. nothing crashes and the pipeline keeps producing `up` samples;
//   2. a failed scrape never drops a series silently — `up` goes to 0 and
//      the series gets a staleness marker, never a fabricated sample;
//   3. samples that survive the faults are bit-identical to the no-fault
//      run (the differential guard: faults may erase data, never alter it);
//   4. an installed-but-unconfigured FaultPlan is behaviourally inert;
//   5. the LB never routes to a backend whose circuit is open (except the
//      single half-open probe, observable via circuit_opens/state).
//
// Every assertion carries the chaos seed, so a CI failure reproduces with
// CHAOS_SEEDS="<seed>" ctest -R Chaos.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "faults/plan.h"
#include "http/server.h"
#include "lb/load_balancer.h"
#include "metrics/model.h"
#include "stack_fixture.h"

namespace ceems {
namespace {

using common::TimestampMs;
using metrics::LabelMatcher;

// Two full flap cycles (flap_period_ms defaults to 10 min), 40 sweeps.
constexpr int64_t kChaosRunMs = 20 * common::kMillisPerMinute;

// Raw exporter metrics for the differential guard: scraped (never
// rule-derived), present on every node, and — because the exposition body
// is rendered exactly once per sweep regardless of faults — expected to be
// bit-identical between the fault and no-fault runs wherever they survive.
// Emissions series are excluded (provider fallback legitimately changes
// which factor is exported).
const char* const kDifferentialMetrics[] = {
    "ceems_compute_unit_cpu_usage_seconds_total",
    "ceems_compute_unit_memory_current_bytes",
    "node_cpu_seconds_total",
    "ceems_rapl_package_joules_total",
    "ceems_ipmi_dcmi_current_watts",
};

// First failure prints a one-line reproduction command (the soak-smoke CI
// job surfaces these lines from the log — see .github/workflows/ci.yml):
// the failing seed is pinned via CHAOS_SEEDS and the suite re-run alone.
void print_replay_once(uint64_t seed) {
  static bool printed = false;
  if (printed || !::testing::Test::HasFailure()) return;
  printed = true;
  std::fprintf(stderr,
               "[chaos replay] CHAOS_SEEDS=\"%llu\" ctest --test-dir build "
               "--output-on-failure -R Chaos\n",
               static_cast<unsigned long long>(seed));
}

std::vector<uint64_t> chaos_seeds() {
  if (const char* env = std::getenv("CHAOS_SEEDS")) {
    std::vector<uint64_t> seeds;
    std::istringstream in(env);
    uint64_t seed;
    while (in >> seed) seeds.push_back(seed);
    if (!seeds.empty()) return seeds;
  }
  return {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
}

uint64_t bits_of(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Full store contents as labels-string -> {t -> value bit pattern}.
using StoreDump = std::map<std::string, std::map<int64_t, uint64_t>>;

StoreDump dump_store(const tsdb::TimeSeriesStore& store,
                     bool include_durations = false) {
  StoreDump out;
  auto views =
      store.select({{"__name__", LabelMatcher::Op::kRegexMatch, ".+"}}, 0,
                   std::numeric_limits<int64_t>::max());
  for (const auto& view : views) {
    // scrape_duration_seconds measures wall time and is never identical
    // across runs; everything else in the stack is simulated-time pure.
    if (!include_durations && view.labels.name() == "scrape_duration_seconds")
      continue;
    auto& series = out[view.labels.to_string()];
    for (const auto& sample : view.samples()) {
      series[sample.t] = bits_of(sample.v);
    }
  }
  return out;
}

bool is_scrape_synthetic(std::string_view name) {
  return name == "up" || name == "scrape_duration_seconds" ||
         name == "ceems_http_retries_total";
}

bool is_rule_output(std::string_view name) {
  return name.find(':') != std::string_view::npos ||
         name.substr(0, 6) == "ALERTS";
}

// Randomized per-seed fault mix. simfs read faults silently thin the
// exposition body, which legitimately shifts stateful collectors'
// accumulation order — so they are only enabled for runs that skip the
// bitwise differential check.
std::shared_ptr<faults::FaultPlan> make_chaos_plan(uint64_t seed,
                                                   bool include_simfs) {
  auto plan = std::make_shared<faults::FaultPlan>(seed);
  common::Rng rng(seed ^ 0xC0FFEEULL);

  faults::SiteFaults scrape;
  scrape.connect_timeout = 0.04 + 0.08 * rng.next_double();
  scrape.io_timeout = 0.06 * rng.next_double();
  scrape.truncate = 0.03 + 0.05 * rng.next_double();
  scrape.slow = 0.04 * rng.next_double();  // delay >= timeout: a failure
  scrape.unavailable = 0.04 * rng.next_double();
  scrape.flap = 0.25;
  plan->configure("scrape.target", scrape);

  faults::SiteFaults emissions;
  emissions.http_429 = 0.25 * rng.next_double();
  emissions.unavailable = 0.25 * rng.next_double();
  plan->configure("emissions.provider", emissions);

  if (include_simfs) {
    faults::SiteFaults fs_faults;
    fs_faults.read_error = 0.01 + 0.02 * rng.next_double();
    plan->configure("simfs.read", fs_faults);
  }
  return plan;
}

// Invariants 1 + 2 over a finished chaos run: up is 0/1 and present every
// sweep; a sweep with up==0 never carries a live sample of that instance,
// and the first failed sweep stale-marks every series that was live on the
// previous sweep.
void check_staleness_invariants(ceems::testing::MiniStack& mini,
                                bool expect_failures) {
  auto& store = *mini.stack().hot_store();
  const TimestampMs end = mini.clock()->now_ms();

  auto ups = store.select({{"__name__", LabelMatcher::Op::kEq, "up"}}, 0, end);
  ASSERT_FALSE(ups.empty());
  bool any_down = false;

  for (const auto& up_view : ups) {
    auto instance = up_view.labels.get("instance");
    ASSERT_TRUE(instance.has_value()) << up_view.labels.to_string();
    SCOPED_TRACE("instance " + std::string(*instance));

    std::map<int64_t, double> up_at;
    std::set<int64_t> down_times;
    for (const auto& sample : up_view.samples()) {
      EXPECT_TRUE(sample.v == 0.0 || sample.v == 1.0) << sample.v;
      up_at[sample.t] = sample.v;
      if (sample.v == 0.0) {
        down_times.insert(sample.t);
        any_down = true;
      }
    }
    if (down_times.empty()) continue;

    auto series = store.select(
        {{"instance", LabelMatcher::Op::kEq, std::string(*instance)}}, 0,
        end);
    for (const auto& view : series) {
      std::string name(view.labels.name());
      if (is_scrape_synthetic(name) || is_rule_output(name)) continue;
      SCOPED_TRACE("series " + view.labels.to_string());

      std::map<int64_t, double> by_t;
      for (const auto& sample : view.samples()) by_t[sample.t] = sample.v;

      // No live sample on a failed sweep.
      for (int64_t t : down_times) {
        auto it = by_t.find(t);
        if (it != by_t.end()) {
          EXPECT_TRUE(metrics::is_stale_marker(it->second))
              << "live sample at failed sweep t=" << t;
        }
      }
      // Live on the previous sweep + down now => marker now.
      int64_t prev_t = -1;
      for (const auto& [t, up] : up_at) {
        if (up == 0.0 && prev_t >= 0 && up_at[prev_t] == 1.0) {
          auto prev = by_t.find(prev_t);
          if (prev != by_t.end() &&
              !metrics::is_stale_marker(prev->second)) {
            auto cur = by_t.find(t);
            ASSERT_TRUE(cur != by_t.end())
                << "series live at t=" << prev_t
                << " dropped silently at failed sweep t=" << t;
            EXPECT_TRUE(metrics::is_stale_marker(cur->second));
          }
        }
        prev_t = t;
      }
    }
  }
  if (expect_failures) EXPECT_TRUE(any_down);
}

// Invariant 3: every surviving (non-stale) sample of the differential
// metrics exists bit-identically in the no-fault baseline.
void check_differential_subset(ceems::testing::MiniStack& mini,
                               const StoreDump& baseline) {
  auto& store = *mini.stack().hot_store();
  for (const char* name : kDifferentialMetrics) {
    auto views = store.select({{"__name__", LabelMatcher::Op::kEq, name}}, 0,
                              std::numeric_limits<int64_t>::max());
    EXPECT_FALSE(views.empty()) << name;
    for (const auto& view : views) {
      const std::string key = view.labels.to_string();
      auto base_it = baseline.find(key);
      ASSERT_TRUE(base_it != baseline.end()) << key;
      for (const auto& sample : view.samples()) {
        if (metrics::is_stale_marker(sample.v)) continue;
        auto t_it = base_it->second.find(sample.t);
        ASSERT_TRUE(t_it != base_it->second.end())
            << key << " @ " << sample.t;
        EXPECT_EQ(t_it->second, bits_of(sample.v)) << key << " @ "
                                                   << sample.t;
      }
    }
  }
}

// No-fault baseline, computed once: the cluster seed is fixed (MiniStack
// default), only the chaos seed varies per run.
const StoreDump& baseline_dump() {
  static const StoreDump* dump = [] {
    ceems::testing::MiniStack mini;
    mini.run(kChaosRunMs);
    return new StoreDump(dump_store(*mini.stack().hot_store()));
  }();
  return *dump;
}

TEST(ChaosStack, RandomFaultPlansKeepInvariants) {
  for (uint64_t seed : chaos_seeds()) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    ceems::testing::MiniStackOptions options;
    options.stack.fault_plan = make_chaos_plan(seed, /*include_simfs=*/false);
    ceems::testing::MiniStack mini(options);
    options.stack.fault_plan->set_clock(mini.clock());
    mini.run(kChaosRunMs);

    EXPECT_GT(options.stack.fault_plan->stats().faults, 0u);
    check_staleness_invariants(mini, /*expect_failures=*/true);
    check_differential_subset(mini, baseline_dump());
    print_replay_once(seed);
  }
}

TEST(ChaosStack, SimfsReadFaultsSurvived) {
  // Collector-level faults: missing pseudo-files thin the exposition (and
  // may shift stateful collectors' accumulation), so only the staleness
  // invariants apply — not the bitwise differential.
  for (uint64_t seed : {7001ULL, 7002ULL, 7003ULL}) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    ceems::testing::MiniStackOptions options;
    options.stack.fault_plan = make_chaos_plan(seed, /*include_simfs=*/true);
    ceems::testing::MiniStack mini(options);
    options.stack.fault_plan->set_clock(mini.clock());
    mini.run(kChaosRunMs);
    EXPECT_GT(options.stack.fault_plan->stats().faults, 0u);
    check_staleness_invariants(mini, /*expect_failures=*/true);
    print_replay_once(seed);
  }
}

TEST(ChaosStack, UnconfiguredPlanIsBitIdenticalToNoPlan) {
  // Invariant 4 — the differential guard's foundation: merely installing
  // the fault machinery (hooks on every site, retry loops armed) must not
  // change a single stored bit.
  ceems::testing::MiniStackOptions with_plan;
  with_plan.stack.fault_plan = std::make_shared<faults::FaultPlan>(12345);
  ceems::testing::MiniStack faulty(with_plan);
  with_plan.stack.fault_plan->set_clock(faulty.clock());
  faulty.run(kChaosRunMs);

  ceems::testing::MiniStack plain;
  plain.run(kChaosRunMs);

  StoreDump a = dump_store(*faulty.stack().hot_store());
  StoreDump b = dump_store(*plain.stack().hot_store());
  EXPECT_EQ(a.size(), b.size());
  EXPECT_TRUE(a == b);
  EXPECT_EQ(with_plan.stack.fault_plan->stats().faults, 0u);
}

TEST(ChaosStack, SameSeedReproducesBitIdentically) {
  // One seed, two complete runs: the whole point of seeded chaos.
  StoreDump dumps[2];
  for (int run = 0; run < 2; ++run) {
    ceems::testing::MiniStackOptions options;
    options.stack.fault_plan = make_chaos_plan(99, /*include_simfs=*/false);
    ceems::testing::MiniStack mini(options);
    options.stack.fault_plan->set_clock(mini.clock());
    mini.run(kChaosRunMs);
    dumps[run] = dump_store(*mini.stack().hot_store());
  }
  EXPECT_TRUE(dumps[0] == dumps[1]);
}

// ---------- LB circuit breaker under chaos (invariant 5) ----------

http::Request admin_query() {
  http::Request request;
  request.method = "GET";
  request.target = "/api/v1/query?query=vector(1)";
  request.headers["X-Grafana-User"] = "admin";
  return request;
}

TEST(ChaosLb, NeverRoutesToOpenCircuit) {
  for (uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    auto clock = common::make_sim_clock(0);
    auto plan = std::make_shared<faults::FaultPlan>(seed);
    plan->set_clock(clock);
    faults::SiteFaults backend_faults;
    backend_faults.connect_timeout = 0.25;
    backend_faults.flap = 0.5;
    backend_faults.flap_period_ms = 20000;
    backend_faults.flap_down_ms = 8000;
    plan->configure("lb.backend", backend_faults);

    http::Server healthy{http::ServerConfig{}};
    healthy.handle_prefix("/", [](const http::Request&) {
      return http::Response::json(200, "{\"status\":\"success\"}");
    });
    healthy.start();

    lb::LbConfig config;
    config.admin_users = {"admin"};
    config.circuit_failure_threshold = 2;
    config.failover_cooldown_ms = 5000;
    config.fault_hook = plan->hook();
    // Two urls for the same live server: faults are keyed per-url, so the
    // breaker sees two independent flapping backends.
    lb::LoadBalancer lb(config,
                        {healthy.base_url(), healthy.base_url() + "/"},
                        clock);

    for (int i = 0; i < 200; ++i) {
      auto before = lb.backend_stats();
      auto response = lb.handle_proxy(admin_query());
      auto after = lb.backend_stats();

      EXPECT_TRUE(response.status == 200 || response.status == 502 ||
                  response.status == 503)
          << response.status;
      uint64_t requests_delta = 0;
      for (std::size_t b = 0; b < before.size(); ++b) {
        requests_delta += after[b].requests - before[b].requests;
        if (before[b].circuit == lb::CircuitState::kOpen &&
            after[b].requests > before[b].requests) {
          // The only admissible request through an open circuit is the
          // half-open probe, which always changes observable state.
          EXPECT_TRUE(after[b].circuit_opens > before[b].circuit_opens ||
                      after[b].circuit != lb::CircuitState::kOpen)
              << "request routed through an open circuit (backend " << b
              << ", iteration " << i << ")";
        }
      }
      // 503 == "all circuits open": no backend may have been contacted.
      if (response.status == 503) EXPECT_EQ(requests_delta, 0u);
      clock->advance(500);
    }
    healthy.stop();
    print_replay_once(seed);
  }
}

// ---------- FaultPlan determinism ----------

TEST(FaultPlan, SameSeedSameDecisions) {
  auto run = [](uint64_t seed) {
    faults::FaultPlan plan(seed);
    faults::SiteFaults site;
    site.connect_timeout = 0.2;
    site.http_5xx = 0.2;
    site.truncate = 0.2;
    plan.configure("s", site);
    std::string trace;
    for (int key = 0; key < 4; ++key) {
      for (int i = 0; i < 64; ++i) {
        auto decision = plan.decide("s", "k" + std::to_string(key));
        trace += faults::fault_kind_name(decision.kind);
        trace += std::to_string(decision.http_status);
        trace += ';';
      }
    }
    return trace;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(FaultPlan, UnconfiguredSiteNeverFaults) {
  faults::FaultPlan plan(1);
  faults::SiteFaults site;
  site.unavailable = 1.0;
  plan.configure("configured", site);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(plan.decide("other", "k"));
    EXPECT_TRUE(plan.decide("configured", "k"));
  }
  // Unconfigured sites short-circuit before the decision stream, so only
  // the configured site's calls are counted.
  EXPECT_EQ(plan.stats().decisions, 32u);
  EXPECT_EQ(plan.stats().faults, 32u);
}

TEST(FaultPlan, FlapperFollowsSquareWave) {
  faults::FaultPlan plan(3);
  faults::SiteFaults site;
  site.flap = 1.0;  // every key flaps
  site.flap_period = 8;
  site.flap_down = 3;
  plan.configure("s", site);
  // Call-count mode (no clock): dark for the first 3 of every 8 decisions.
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (int n = 0; n < 8; ++n) {
      auto decision = plan.decide("s", "k");
      EXPECT_EQ(static_cast<bool>(decision), n < 3)
          << "cycle " << cycle << " n " << n;
      if (decision) EXPECT_EQ(decision.kind, faults::FaultKind::kUnavailable);
    }
  }
}

}  // namespace
}  // namespace ceems
