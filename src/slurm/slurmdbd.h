// Accounting database (slurmdbd analogue). The scheduler writes job
// records; the CEEMS API server polls it for "compute units" (§II-B.b).
// Thread-safe: the simulator thread updates while API-server threads read.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "slurm/job.h"

namespace ceems::slurm {

class SlurmDbd {
 public:
  void upsert(const Job& job);
  std::optional<Job> job(int64_t job_id) const;

  // Jobs whose lifetime intersects [start_ms, end_ms): started (or still
  // pending→running transitions) before end, not finished before start.
  std::vector<Job> jobs_active_between(common::TimestampMs start_ms,
                                       common::TimestampMs end_ms) const;

  // Jobs whose record changed at/after `since_ms` (submit, start or end
  // event) — the incremental poll the API-server updater uses.
  std::vector<Job> jobs_changed_since(common::TimestampMs since_ms) const;

  std::vector<Job> all_jobs() const;
  std::size_t size() const;
  std::size_t count_in_state(JobState state) const;

 private:
  mutable std::mutex mu_;
  std::map<int64_t, Job> jobs_;
  std::map<int64_t, common::TimestampMs> last_change_;
};

}  // namespace ceems::slurm
