// GPU device simulation plus the DCGM / AMD-SMI style telemetry interface
// the companion exporters expose (§II-A.d: CEEMS relies on the NVIDIA DCGM
// exporter or the AMD SMI exporter running alongside it). GpuBank models
// the devices; the exporter module renders their telemetry with the exact
// DCGM_FI_DEV_* / amd_gpu_* metric names so downstream recording rules look
// like production ones.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "node/spec.h"

namespace ceems::node {

struct GpuTelemetry {
  int ordinal = 0;
  std::string uuid;    // DCGM-style "GPU-xxxxxxxx"
  std::string model;
  GpuVendor vendor = GpuVendor::kNvidia;
  double power_w = 0;
  double utilization = 0;       // 0..1 (DCGM reports percent)
  int64_t memory_used_bytes = 0;
  int64_t memory_total_bytes = 0;
  double lifetime_energy_j = 0;  // total energy consumption counter
};

class GpuBank {
 public:
  // `hostname` seeds deterministic per-device UUIDs.
  GpuBank(const NodeSpec& spec, const std::string& hostname);

  std::size_t size() const { return devices_.size(); }

  // Called by NodeSim each step with per-GPU power/utilization state.
  void update(const std::vector<double>& per_gpu_w,
              const std::vector<double>& per_gpu_util,
              const std::vector<int64_t>& per_gpu_mem_bytes, int64_t dt_ms);

  std::vector<GpuTelemetry> snapshot() const;
  std::optional<GpuTelemetry> device(int ordinal) const;

 private:
  mutable std::mutex mu_;
  std::vector<GpuTelemetry> devices_;
};

// Deterministic DCGM-style UUID, e.g. "GPU-5f2c1a3e9d4b0817".
std::string make_gpu_uuid(const std::string& hostname, int ordinal);

}  // namespace ceems::node
