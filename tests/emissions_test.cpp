#include <gtest/gtest.h>

#include "emissions/electricity_maps.h"
#include "emissions/owid.h"
#include "emissions/provider.h"
#include "emissions/rte.h"

namespace ceems::emissions {
namespace {

using common::kMillisPerDay;
using common::kMillisPerHour;
using common::kMillisPerMinute;

TEST(Emissions, GramsFromJoules) {
  // 1 kWh at 56 g/kWh = 56 g.
  EXPECT_DOUBLE_EQ(emissions_grams(3.6e6, 56.0), 56.0);
  EXPECT_DOUBLE_EQ(emissions_grams(0, 500), 0);
}

TEST(Owid, KnownCountries) {
  OwidProvider owid;
  auto fr = owid.factor("FR", 0);
  ASSERT_TRUE(fr.has_value());
  EXPECT_DOUBLE_EQ(fr->gco2_per_kwh, 56);
  EXPECT_FALSE(fr->realtime);
  EXPECT_EQ(fr->provider, "owid");
  // France is far cleaner than Poland.
  EXPECT_LT(fr->gco2_per_kwh, owid.factor("PL", 0)->gco2_per_kwh / 5);
  EXPECT_FALSE(owid.factor("XX", 0).has_value());
}

TEST(Rte, OnlyCoversFrance) {
  RteProvider rte;
  EXPECT_TRUE(rte.factor("FR", 0).has_value());
  EXPECT_FALSE(rte.factor("DE", 0).has_value());
}

TEST(Rte, DiurnalPattern) {
  // Evening peak (19h) dirtier than mid-night (03h), on the same day.
  common::TimestampMs night = 3 * kMillisPerHour;
  common::TimestampMs evening = 19 * kMillisPerHour;
  EXPECT_GT(RteProvider::model_gco2_per_kwh(evening),
            RteProvider::model_gco2_per_kwh(night));
}

TEST(Rte, SeasonalWinterUplift) {
  // Mid-January noon vs mid-July noon (at identical time of day).
  common::TimestampMs january = 15 * kMillisPerDay + 12 * kMillisPerHour;
  common::TimestampMs july = 196 * kMillisPerDay + 12 * kMillisPerHour;
  EXPECT_GT(RteProvider::model_gco2_per_kwh(january),
            RteProvider::model_gco2_per_kwh(july));
}

TEST(Rte, QuantizedToFifteenMinutes) {
  common::TimestampMs t = 7 * kMillisPerHour;
  EXPECT_DOUBLE_EQ(RteProvider::model_gco2_per_kwh(t),
                   RteProvider::model_gco2_per_kwh(t + 14 * kMillisPerMinute));
  EXPECT_NE(RteProvider::model_gco2_per_kwh(t),
            RteProvider::model_gco2_per_kwh(t + 15 * kMillisPerMinute));
}

TEST(Rte, DeterministicOutages) {
  RteProvider flaky(/*availability=*/0.5);
  int available = 0;
  for (int slot = 0; slot < 400; ++slot) {
    common::TimestampMs t = slot * 15 * kMillisPerMinute;
    bool first = flaky.factor("FR", t).has_value();
    bool second = flaky.factor("FR", t).has_value();
    EXPECT_EQ(first, second);  // deterministic in t
    if (first) ++available;
  }
  EXPECT_NEAR(available, 200, 50);
}

TEST(EMaps, MultiZoneRealtime) {
  auto clock = common::make_sim_clock(0);
  ElectricityMapsProvider emaps(clock, {.max_requests_per_hour = 0});
  for (const std::string& zone : {"FR", "DE", "PL", "SE"}) {
    auto factor = emaps.factor(zone, 12 * kMillisPerHour);
    ASSERT_TRUE(factor.has_value()) << zone;
    EXPECT_TRUE(factor->realtime);
  }
  EXPECT_FALSE(emaps.factor("ZZ", 0).has_value());
  // Relative ordering of grid carbon intensity preserved.
  EXPECT_LT(emaps.factor("SE", 0)->gco2_per_kwh,
            emaps.factor("DE", 0)->gco2_per_kwh);
}

TEST(EMaps, SolarDipAtMidday) {
  auto germany_at = [](double hour) {
    return *ElectricityMapsProvider::model_gco2_per_kwh(
        "DE", static_cast<common::TimestampMs>(hour * kMillisPerHour));
  };
  EXPECT_LT(germany_at(13.0), germany_at(19.0));
}

TEST(EMaps, RateLimitEnforced) {
  auto clock = common::make_sim_clock(0);
  ElectricityMapsProvider emaps(clock, {.max_requests_per_hour = 5});
  int granted = 0;
  for (int i = 0; i < 10; ++i) {
    if (emaps.factor("FR", clock->now_ms()).has_value()) ++granted;
  }
  EXPECT_EQ(granted, 5);
  EXPECT_EQ(emaps.requests_rejected(), 5u);
  // Quota refills after the rolling hour.
  clock->advance(kMillisPerHour + 1);
  EXPECT_TRUE(emaps.factor("FR", clock->now_ms()).has_value());
}

TEST(Caching, StaysUnderQuotaAndServesStale) {
  auto clock = common::make_sim_clock(0);
  auto inner = std::make_shared<ElectricityMapsProvider>(
      clock, EMapsConfig{.max_requests_per_hour = 2});
  CachingProvider cached(inner, /*ttl_ms=*/15 * kMillisPerMinute);

  // 60 reads over 30 min at 30 s cadence → only 2 upstream fetches.
  int served = 0;
  for (int i = 0; i < 60; ++i) {
    if (cached.factor("FR", clock->now_ms()).has_value()) ++served;
    clock->advance(30000);
  }
  EXPECT_EQ(served, 60);
  EXPECT_LE(inner->requests_made(), 3u);
  EXPECT_GT(cached.cache_hits(), 50u);
}

TEST(Chain, RealtimeFirstStaticFallback) {
  auto clock = common::make_sim_clock(0);
  ProviderChain chain({
      std::make_shared<RteProvider>(),
      std::make_shared<OwidProvider>(),
  });
  // France: RTE answers.
  auto fr = chain.factor("FR", 0);
  ASSERT_TRUE(fr.has_value());
  EXPECT_EQ(fr->provider, "rte");
  // Germany: RTE declines, OWID answers.
  auto de = chain.factor("DE", 0);
  ASSERT_TRUE(de.has_value());
  EXPECT_EQ(de->provider, "owid");
  // Unknown zone: nobody answers.
  EXPECT_FALSE(chain.factor("XX", 0).has_value());
}

TEST(Chain, RateLimited429FallsThroughToNextProvider) {
  auto clock = common::make_sim_clock(0);
  // Rate-limited EMaps first, OWID fallback: once the quota is burnt the
  // chain must keep answering from the next provider, not go dark.
  auto emaps = std::make_shared<ElectricityMapsProvider>(
      clock, EMapsConfig{.max_requests_per_hour = 2});
  ProviderChain chain({emaps, std::make_shared<OwidProvider>()});

  for (int i = 0; i < 6; ++i) {
    auto factor = chain.factor("DE", clock->now_ms());
    ASSERT_TRUE(factor.has_value()) << i;
    EXPECT_EQ(factor->provider, i < 2 ? "emaps" : "owid") << i;
    clock->advance(30000);
  }
  EXPECT_EQ(emaps->requests_rejected(), 4u);
}

TEST(Chain, FaultInjectionTriggersFallback) {
  faults::FaultHook hook = [](std::string_view site, std::string_view key) {
    EXPECT_EQ(site, "emissions.provider");
    faults::FaultDecision fault;
    if (key == "rte/FR") fault.kind = faults::FaultKind::kHttpStatus;
    return fault;
  };
  auto rte = std::make_shared<FaultInjectedProvider>(
      std::make_shared<RteProvider>(), hook);
  ProviderChain chain({rte, std::make_shared<OwidProvider>()});
  auto fr = chain.factor("FR", 0);
  ASSERT_TRUE(fr.has_value());
  EXPECT_EQ(fr->provider, "owid");  // rte was faulted away
  EXPECT_EQ(rte->faults_injected(), 1u);
}

TEST(Chain, LastKnownGoodServedUntilTtlExpires) {
  auto clock = common::make_sim_clock(0);
  bool down = false;
  faults::FaultHook hook = [&](std::string_view, std::string_view) {
    faults::FaultDecision fault;
    if (down) fault.kind = faults::FaultKind::kUnavailable;
    return fault;
  };
  ProviderChain chain(
      {std::make_shared<FaultInjectedProvider>(
          std::make_shared<OwidProvider>(), hook)},
      /*lkg_ttl_ms=*/10 * kMillisPerMinute);

  auto live = chain.factor("FR", clock->now_ms());
  ASSERT_TRUE(live.has_value());
  EXPECT_EQ(chain.lkg_served(), 0u);

  // Total outage: the cached factor carries the chain inside the TTL...
  down = true;
  clock->advance(5 * kMillisPerMinute);
  auto cached = chain.factor("FR", clock->now_ms());
  ASSERT_TRUE(cached.has_value());
  EXPECT_DOUBLE_EQ(cached->gco2_per_kwh, live->gco2_per_kwh);
  EXPECT_EQ(chain.lkg_served(), 1u);

  // ...and at exactly the TTL boundary it still serves...
  clock->advance(5 * kMillisPerMinute);
  EXPECT_TRUE(chain.factor("FR", clock->now_ms()).has_value());

  // ...but past it the chain goes dark rather than serve stale data.
  clock->advance(1);
  EXPECT_FALSE(chain.factor("FR", clock->now_ms()).has_value());
  EXPECT_EQ(chain.lkg_served(), 2u);

  // Recovery repopulates the cache.
  down = false;
  EXPECT_TRUE(chain.factor("FR", clock->now_ms()).has_value());
  down = true;
  EXPECT_TRUE(chain.factor("FR", clock->now_ms()).has_value());
}

}  // namespace
}  // namespace ceems::emissions
