file(REMOVE_RECURSE
  "CMakeFiles/cli_ceems_stack.dir/ceems_stack.cpp.o"
  "CMakeFiles/cli_ceems_stack.dir/ceems_stack.cpp.o.d"
  "ceems_stack"
  "ceems_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_ceems_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
