// Soak scenarios — the declarative layer of the thousand-node soak
// harness (DESIGN.md §11). A Scenario describes one fleet-scale run:
// how many nodes, how long, what job churn, and which storms hit the
// stack when — job-arrival storms, label-cardinality explosions from a
// misbehaving exporter, scrape-target flapping, emissions-provider
// outages and LB backend brown-outs — all composed on top of the seeded
// ceems::faults machinery so a run replays bit-identically from
// (scenario, seed).
//
// Scenarios are expressed in a line-oriented text DSL so CI logs, replay
// commands and committed fixtures all share one canonical form:
//
//   scenario full
//   nodes 1000
//   duration 45m
//   seed 7
//   storm flap from 5m for 20m fraction 0.25
//   storm cardinality from 10m for 10m series 5000 churn 4
//   storm churn from 15m for 10m factor 4
//   outage emissions from 20m for 10m
//   storm lb from 24m for 8m
//   storm crash_restart from 22m for 12m every 4m
//   budget bytes_per_node 192k
//
// parse_scenario_text() reads it back; to_text() round-trips. The
// builtin scenarios (smoke, churn, cardinality, outage, full) are stored
// as DSL text and go through the same parser, so the parser is exercised
// on every soak run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"

namespace ceems::soak {

// Half-open window [start_ms, end_ms) in simulated time since run start.
struct StormWindow {
  int64_t start_ms = 0;
  int64_t end_ms = 0;
  bool contains(int64_t t_ms) const { return t_ms >= start_ms && t_ms < end_ms; }
};

// A misbehaving exporter starts exposing `series` unique label sets; the
// label values churn to a fresh "wave" every `churn_sweeps` scrapes, so
// total cardinality grows wave by wave — the classic runaway-exporter
// explosion the API server's cardinality knobs exist for.
struct CardinalityStorm {
  StormWindow window;
  int series = 2000;
  int churn_sweeps = 4;
};

// Scrape targets start flapping (square-wave outages plus sporadic
// transport faults) via the "scrape.target" fault site.
struct FlapStorm {
  StormWindow window;
  double fraction = 0.25;       // share of targets that flap
  double connect_timeout = 0.05;  // per-scrape transport fault rate
};

// Arrival-rate storm: the workload generator's jobs_per_day is multiplied
// by `factor` for the window — a submission burst at fleet scale.
struct ChurnStorm {
  StormWindow window;
  double factor = 4.0;
};

// Every emissions provider goes dark ("emissions.provider" site at
// unavailable=1); the chain must serve last-known-good factors and
// recover cleanly after the window.
struct EmissionsOutage {
  StormWindow window;
};

// LB backend brown-out ("lb.backend" site): transport faults plus
// flapping trip the per-backend circuit breakers, which must re-close
// after the window.
struct LbStorm {
  StormWindow window;
  double connect_timeout = 0.25;
  double flap_fraction = 0.5;
};

// Hot-store crash/restart storm: every `every_ms` within the window the
// hot TSDB process "loses power" (its durable dir drops unsynced bytes)
// and is recovered in place from snapshot + WAL replay — the write-path
// durability claim exercised mid-scenario. Because every append is group-
// committed before it returns and crashes land between pipeline steps,
// recovery must be lossless: series/sample counts and canonical query
// results are asserted identical across each crash.
struct CrashRestartStorm {
  StormWindow window;
  int64_t every_ms = 4 * common::kMillisPerMinute;
};

// Hard-invariant budgets, asserted continuously at every checkpoint.
struct InvariantBudgets {
  // Memory ceiling: hot + long-term approx_bytes + the process symbol
  // table must stay under bytes_fixed + bytes_per_node * node_count.
  std::size_t bytes_fixed = 64u << 20;
  std::size_t bytes_per_node = 256u << 10;
  // Ingest lag: newest hot-store sample may trail the clock by at most
  // this (0 = default to 3 * scrape_interval).
  int64_t ingest_lag_ms = 0;
  // Deterministic per-query step budget: the p99 of points scanned per
  // canonical checkpoint query must stay under this.
  uint64_t query_points_p99 = 200000;
};

struct Scenario {
  std::string name = "unnamed";
  int nodes = 100;
  int64_t duration_ms = 30 * common::kMillisPerMinute;
  int64_t step_ms = 10 * common::kMillisPerSecond;
  int64_t scrape_interval_ms = 30 * common::kMillisPerSecond;
  // 0 = derived from the node count (the MiniStack-calibrated churn of
  // ~700 jobs/day/node).
  double jobs_per_day = 0;
  uint64_t seed = 7;
  // Invariants are evaluated (and counters sampled) this often.
  int64_t checkpoint_every_ms = 5 * common::kMillisPerMinute;
  // Hot-store retention: samples older than this are purged at
  // checkpoints, which is what makes the memory ceiling a steady-state
  // claim instead of a function of run length.
  int64_t hot_retention_ms = 30 * common::kMillisPerMinute;
  // Clean tail after `duration_ms` with every storm lifted, before the
  // recovery invariants (all up, circuits closed, no staleness leaks).
  int64_t recovery_ms = 5 * common::kMillisPerMinute;
  InvariantBudgets budgets;

  std::optional<CardinalityStorm> cardinality;
  std::optional<FlapStorm> flap;
  std::optional<ChurnStorm> churn;
  std::optional<EmissionsOutage> outage;
  std::optional<LbStorm> lb;
  std::optional<CrashRestartStorm> crash_restart;

  // Derived: jobs_per_day, honoring the 0 = per-node default.
  double effective_jobs_per_day() const;
  // End of the last configured storm window (0 when storm-free).
  int64_t last_storm_end_ms() const;
};

// Parses the DSL; on error returns nullopt and sets *error to a
// "line N: what" message.
std::optional<Scenario> parse_scenario_text(const std::string& text,
                                            std::string* error);

// Canonical DSL text for a scenario; parse_scenario_text() round-trips it.
std::string to_text(const Scenario& scenario);

// Builtin scenario names, and their DSL text (empty string = unknown).
std::vector<std::string> builtin_scenario_names();
std::string builtin_scenario_text(const std::string& name);

// Series the misbehaving soak exporter exposes: one heartbeat (always
// present, so the target is legitimately up outside storms) and the
// exploding storm metric whose label sets churn wave by wave.
inline constexpr const char* kHeartbeatMetricName =
    "soak_bad_exporter_heartbeat";
inline constexpr const char* kStormMetricName = "soak_storm_series";

}  // namespace ceems::soak
