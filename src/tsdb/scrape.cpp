#include "tsdb/scrape.h"

#include <cctype>

#include "common/logging.h"
#include "common/strutil.h"
#include "metrics/text_format.h"

namespace ceems::tsdb {

namespace {

using metrics::ExpositionParseError;
using metrics::InternedLabels;
using metrics::Labels;

uint64_t fnv1a(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

// Strict label-block parse, byte-for-byte the same accept/reject rules
// (and exception messages) as metrics::parse_exposition — the chaos
// suite's differential guard depends on failure parity. Runs only on a
// series-cache miss, so its per-label allocations are once per series
// lifetime, not once per scrape.
Labels parse_label_block(std::string_view line, std::size_t& pos) {
  std::vector<Labels::Pair> pairs;
  ++pos;  // consume '{'
  for (;;) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == ',')) ++pos;
    if (pos < line.size() && line[pos] == '}') {
      ++pos;
      return Labels(std::move(pairs));
    }
    std::size_t name_start = pos;
    while (pos < line.size() && line[pos] != '=') ++pos;
    if (pos >= line.size())
      throw ExpositionParseError("unterminated label block: " +
                                 std::string(line));
    std::string name(
        common::trim(line.substr(name_start, pos - name_start)));
    ++pos;  // '='
    if (pos >= line.size() || line[pos] != '"')
      throw ExpositionParseError("label value must be quoted: " +
                                 std::string(line));
    ++pos;  // '"'
    std::size_t value_start = pos;
    while (pos < line.size() && line[pos] != '"') {
      if (line[pos] == '\\' && pos + 1 < line.size()) pos += 2;
      else ++pos;
    }
    if (pos >= line.size())
      throw ExpositionParseError("unterminated label value: " +
                                 std::string(line));
    std::string value = metrics::unescape_label_value(
        line.substr(value_start, pos - value_start));
    ++pos;  // closing '"'
    if (!metrics::is_valid_label_name(name))
      throw ExpositionParseError("invalid label name '" + name + "'");
    pairs.emplace_back(std::move(name), std::move(value));
  }
}

}  // namespace

ScrapeManager::ScrapeManager(StorePtr store, common::ClockPtr clock,
                             ScrapeConfig config)
    : store_(std::move(store)),
      clock_(std::move(clock)),
      config_(config) {}

ScrapeManager::~ScrapeManager() { stop(); }

void ScrapeManager::add_target(ScrapeTarget target) {
  auto state = std::make_unique<TargetState>();
  http::ClientConfig client_config;
  client_config.io_timeout_ms = config_.timeout_ms;
  client_config.connect_timeout_ms = config_.timeout_ms;
  client_config.basic_auth = target.auth;
  // HTTP transport retries live in the client (no clock: deterministic
  // sweeps retry without sleeping); local-transport retries are handled in
  // scrape_target.
  client_config.retry.max_retries = config_.retries;
  client_config.retry.initial_backoff_ms = 0;
  client_config.fault_hook = config_.fault_hook;
  state->target = std::move(target);
  state->client = std::make_unique<http::Client>(client_config);
  auto& table = metrics::SymbolTable::global();
  for (const auto& [name, value] : state->target.labels.pairs()) {
    state->target_syms.emplace_back(table.intern(name), table.intern(value));
  }
  state->up_labels = state->target.labels.with_name("up");
  state->duration_labels =
      state->target.labels.with_name("scrape_duration_seconds");
  state->retries_labels =
      state->target.labels.with_name("ceems_http_retries_total");
  auto instance = state->target.labels.get("instance");
  state->fault_key = instance ? std::string(*instance) : state->target.url;
  std::lock_guard lock(targets_mu_);
  targets_.push_back(std::move(state));
}

std::size_t ScrapeManager::target_count() const {
  std::lock_guard lock(targets_mu_);
  return targets_.size();
}

ScrapeManager::TargetSweep ScrapeManager::scrape_target(
    TargetState& state, common::TimestampMs now) {
  TargetSweep sweep;
  auto started = std::chrono::steady_clock::now();

  http::FetchResult result;
  if (state.target.local_fetch) {
    // The exposition body is produced exactly once per sweep, so exporter
    // state advances identically whether or not faults/retries occur —
    // the chaos suite's differential guard depends on this. Faults and
    // retries then replay against the cached body.
    std::string body = state.target.local_fetch();
    int attempts = 1 + std::max(0, config_.retries);
    for (int attempt = 0; attempt < attempts; ++attempt) {
      if (attempt > 0) {
        ++sweep.retries;
        ++state.local_retries;
      }
      result = {};
      faults::FaultDecision fault;
      if (config_.fault_hook) {
        fault = config_.fault_hook("scrape.target", state.fault_key);
      }
      if (fault.kind == faults::FaultKind::kTruncateBody) {
        // A truncated exposition could parse cleanly up to the cut; the
        // transport layer (Content-Length check in http::Client) rejects
        // it rather than silently ingesting a partial sample set.
        result.error = "truncated body (injected)";
      } else if (fault.kind == faults::FaultKind::kSlowResponse &&
                 fault.delay_ms < config_.timeout_ms) {
        result.response.body = body;  // late but within the timeout
        result.response.status = 200;
        result.ok = !body.empty();
        if (!result.ok) result.error = "local fetch returned no data";
      } else if (fault) {
        result.error = std::string("injected fault: ") +
                       faults::fault_kind_name(fault.kind);
      } else {
        result.response.body = body;
        result.response.status = 200;
        result.ok = !result.response.body.empty();
        if (!result.ok) result.error = "local fetch returned no data";
      }
      if (result.ok) break;
    }
  } else {
    uint64_t retries_before = state.client->stats().retries;
    result = state.client->get(state.target.url);
    sweep.retries += state.client->stats().retries - retries_before;
  }
  double duration_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  // Every outcome — success, failure, retry — lands in the store as data:
  // up, scrape_duration_seconds and the transport retry counter.
  auto append_synthetics = [&](double up) {
    store_->append(state.up_labels, now, up);
    store_->append(state.duration_labels, now, duration_sec);
    store_->append(state.retries_labels, now,
                   static_cast<double>(state.local_retries +
                                       state.client->stats().retries));
  };

  auto mark_failed = [&] {
    append_synthetics(0);
    ++state.consecutive_failures;
    if (config_.emit_stale_markers) {
      for (auto& [hash, entry] : state.series_cache) {
        if (!entry.live) continue;
        store_->append(entry.labels, now, metrics::stale_marker());
        entry.live = false;
        ++sweep.stale_markers;
      }
    }
    sweep.ingested = -1;
  };

  if (!result.ok || result.response.status != 200) {
    mark_failed();
    return sweep;
  }

  try {
    // Zero-copy parse into the reused scratch batch: lines are walked as
    // string_views over the response body, each series resolves through
    // the per-target cache (symbol resolution happens once per series
    // lifetime), and nothing is appended until the whole body parsed —
    // a malformed line fails the sweep atomically, exactly like the old
    // parse_exposition path.
    ++state.sweep_gen;
    parse_into_batch(state, result.response.body, now);
    sweep.ingested = static_cast<int64_t>(
        store_->append_refs(state.batch.data(), state.batch.size()));
    // One pass over the cache: series exposed last scrape but gone now
    // ended between sweeps — mark them stale so they vanish from queries
    // at this sweep, not after the lookback window drains (Prometheus'
    // disappearing-series semantics). Entries dead long enough are
    // evicted so churned series do not pin cache memory forever.
    for (auto it = state.series_cache.begin();
         it != state.series_cache.end();) {
      auto& entry = it->second;
      if (entry.last_seen == state.sweep_gen) {
        entry.live = true;
        ++it;
        continue;
      }
      if (entry.live) {
        if (config_.emit_stale_markers) {
          store_->append(entry.labels, now, metrics::stale_marker());
          ++sweep.stale_markers;
        }
        entry.live = false;
      }
      if (state.sweep_gen - entry.last_seen > kEvictSweeps) {
        it = state.series_cache.erase(it);
      } else {
        ++it;
      }
    }
    state.consecutive_failures = 0;
  } catch (const metrics::ExpositionParseError& e) {
    CEEMS_LOG_WARN("scrape") << state.target.url << ": " << e.what();
    mark_failed();
    return sweep;
  }
  append_synthetics(1);
  return sweep;
}

void ScrapeManager::parse_into_batch(TargetState& state,
                                     std::string_view body,
                                     common::TimestampMs now) {
  state.batch.clear();
  state.overflow_labels.clear();

  for (std::size_t start = 0; start < body.size();) {
    std::size_t nl = body.find('\n', start);
    std::size_t line_end = (nl == std::string_view::npos) ? body.size() : nl;
    std::string_view line = common::trim(body.substr(start, line_end - start));
    start = line_end + 1;
    if (line.empty() || line[0] == '#') continue;  // comments never fail

    // Series key span: metric name plus the raw label block. The scan is
    // quote-aware (a '}' inside a quoted label value does not close the
    // block) but validates nothing — validation happens in the strict
    // parse on a cache miss, so every line the old parser rejected still
    // throws here.
    std::size_t pos = 0;
    while (pos < line.size() && line[pos] != '{' && line[pos] != ' ' &&
           line[pos] != '\t') {
      ++pos;
    }
    std::size_t name_len = pos;
    std::size_t key_end = pos;
    bool scan_failed = false;
    if (pos < line.size() && line[pos] == '{') {
      bool in_quotes = false;
      std::size_t scan = pos + 1;
      std::size_t close = std::string_view::npos;
      while (scan < line.size()) {
        char c = line[scan];
        if (in_quotes) {
          if (c == '\\' && scan + 1 < line.size()) ++scan;
          else if (c == '"') in_quotes = false;
        } else if (c == '"') {
          in_quotes = true;
        } else if (c == '}') {
          close = scan;
          break;
        }
        ++scan;
      }
      if (close == std::string_view::npos) {
        scan_failed = true;  // strict parse below raises the exact error
      } else {
        key_end = close + 1;
      }
    }

    const InternedLabels* labels = nullptr;
    if (!scan_failed) {
      std::string_view key = line.substr(0, key_end);
      uint64_t hash = fnv1a(key);
      auto it = state.series_cache.find(hash);
      if (it != state.series_cache.end() && it->second.raw_key == key) {
        it->second.last_seen = state.sweep_gen;
        labels = &it->second.labels;
      } else if (it == state.series_cache.end()) {
        InternedLabels resolved =
            resolve_series_strict(state, line, name_len, &key_end);
        auto [slot, inserted] = state.series_cache.emplace(
            hash, TargetState::CachedSeries{std::string(key),
                                            std::move(resolved),
                                            state.sweep_gen, false});
        labels = &slot->second.labels;
      } else {
        // Same 64-bit hash, different bytes: parse in full, keep the
        // labels alive in the overflow list, leave the cache alone.
        state.overflow_labels.push_back(
            resolve_series_strict(state, line, name_len, &key_end));
        labels = &state.overflow_labels.back();
      }
    } else {
      // No closing '}' found: the strict parse below throws the exact
      // error the old parser raised for this line.
      state.overflow_labels.push_back(
          resolve_series_strict(state, line, name_len, &key_end));
      labels = &state.overflow_labels.back();
    }

    // Value and optional timestamp, tokenized exactly like split_fields
    // (any isspace separates; trailing extra fields are ignored).
    std::size_t p = key_end;
    while (p < line.size() && is_space(line[p])) ++p;
    if (p >= line.size())
      throw ExpositionParseError("missing value in line: " +
                                 std::string(line));
    std::size_t tok = p;
    while (p < line.size() && !is_space(line[p])) ++p;
    std::string_view value_text = line.substr(tok, p - tok);
    auto value = common::parse_double(value_text);
    if (!value)
      throw ExpositionParseError("bad sample value '" +
                                 std::string(value_text) + "'");
    common::TimestampMs timestamp = 0;
    while (p < line.size() && is_space(line[p])) ++p;
    if (p < line.size()) {
      tok = p;
      while (p < line.size() && !is_space(line[p])) ++p;
      std::string_view ts_text = line.substr(tok, p - tok);
      auto ts = common::parse_int64(ts_text);
      if (!ts)
        throw ExpositionParseError("bad timestamp '" + std::string(ts_text) +
                                   "'");
      timestamp = *ts;
    }

    common::TimestampMs t =
        config_.honor_timestamps && timestamp != 0 ? timestamp : now;
    state.batch.push_back({labels, t, *value});
  }
}

metrics::InternedLabels ScrapeManager::resolve_series_strict(
    TargetState& state, std::string_view line, std::size_t name_len,
    std::size_t* end_pos) {
  std::string_view name = line.substr(0, name_len);
  if (!metrics::is_valid_metric_name(name))
    throw ExpositionParseError("invalid metric name in line: " +
                               std::string(line));
  std::size_t pos = name_len;
  Labels labels;
  if (pos < line.size() && line[pos] == '{')
    labels = parse_label_block(line, pos);
  *end_pos = pos;
  InternedLabels resolved =
      InternedLabels(labels).with(metrics::kMetricNameLabel, name);
  for (const auto& [name_sym, value_sym] : state.target_syms) {
    resolved = resolved.with_symbols(name_sym, value_sym);
  }
  return resolved;
}

ScrapeStats ScrapeManager::scrape_all_once() {
  std::vector<TargetState*> snapshot;
  {
    std::lock_guard lock(targets_mu_);
    snapshot.reserve(targets_.size());
    for (auto& state : targets_) snapshot.push_back(state.get());
  }
  common::TimestampMs now = clock_->now_ms();

  ScrapeStats sweep;
  std::mutex sweep_mu;
  // The sweep pool persists across sweeps (re-created only when the
  // effective width changes, i.e. when targets are added below the
  // parallelism cap) — a steady-state sweep spawns no threads.
  std::size_t width =
      std::min<std::size_t>(static_cast<std::size_t>(config_.parallelism),
                            std::max<std::size_t>(1, snapshot.size()));
  if (!sweep_pool_ || sweep_pool_width_ != width) {
    sweep_pool_ = std::make_unique<common::ThreadPool>(width, "scrape");
    sweep_pool_width_ = width;
  }
  for (TargetState* state : snapshot) {
    sweep_pool_->submit([&, state] {
      TargetSweep result = scrape_target(*state, now);
      std::lock_guard lock(sweep_mu);
      ++sweep.scrapes_total;
      sweep.retries += result.retries;
      sweep.stale_markers += result.stale_markers;
      if (result.ingested < 0) {
        ++sweep.scrapes_failed;
      } else {
        sweep.samples_ingested += static_cast<uint64_t>(result.ingested);
      }
    });
  }
  sweep_pool_->wait_idle();

  scrapes_total_ += sweep.scrapes_total;
  scrapes_failed_ += sweep.scrapes_failed;
  samples_ingested_ += sweep.samples_ingested;
  retries_ += sweep.retries;
  stale_markers_ += sweep.stale_markers;
  return sweep;
}

void ScrapeManager::start() {
  if (running_.exchange(true)) return;
  loop_thread_ = std::thread([this] {
    while (running_.load()) {
      common::TimestampMs next = clock_->now_ms() + config_.interval_ms;
      scrape_all_once();
      if (!clock_->sleep_until(next)) return;
      if (!running_.load()) return;
    }
  });
}

void ScrapeManager::stop() {
  if (!running_.exchange(false)) return;
  clock_->interrupt();
  if (loop_thread_.joinable()) loop_thread_.join();
}

ScrapeStats ScrapeManager::stats() const {
  ScrapeStats out;
  out.scrapes_total = scrapes_total_.load();
  out.scrapes_failed = scrapes_failed_.load();
  out.samples_ingested = samples_ingested_.load();
  out.retries = retries_.load();
  out.stale_markers = stale_markers_.load();
  return out;
}

}  // namespace ceems::tsdb
