// Jean-Zay deployment scenario (paper §III, experiment E3): the full Fig. 1
// architecture over a scaled Jean-Zay cluster — heterogeneous partitions
// (Intel/AMD CPU nodes, V100/A100/H100 GPU nodes with both BMC wiring
// variants), per-node-group recording rules, hot TSDB → long-term store
// replication, API-server aggregation, and the operator's view of the
// cluster at the end.
//
//   ./jean_zay [scale=0.02] [hours=4] [jobs_per_day=3000]
#include <cstdio>
#include <cstdlib>

#include "apiserver/reports.h"
#include "common/logging.h"
#include "common/strutil.h"
#include "core/config.h"
#include "dashboard/panels.h"

using namespace ceems;

int main(int argc, char** argv) {
  common::set_log_level(common::LogLevel::kError);
  double scale_factor = argc > 1 ? std::atof(argv[1]) : 0.02;
  double hours = argc > 2 ? std::atof(argv[2]) : 4.0;
  double jobs_per_day = argc > 3 ? std::atof(argv[3]) : 3000.0;

  auto clock = common::make_sim_clock(1700000000000LL);
  slurm::JeanZayScale scale = slurm::JeanZayScale{}.scaled(scale_factor);
  auto gen = slurm::make_jean_zay_workload_config(
      scale, jobs_per_day * scale_factor / 0.02);
  slurm::ClusterSim sim(clock, slurm::make_jean_zay_cluster(clock, scale, 42),
                        gen, 42);

  core::StackConfig stack_config;
  stack_config.http_exporter_count = 4;  // a few real HTTP exporters
  stack_config.include_equal_split_baseline = false;
  core::CeemsStack stack(sim, stack_config);

  std::printf("Jean-Zay slice at scale %.3f: %zu nodes "
              "(%d intel, %d amd, %d V100, %d A100, %d H100 hosts)\n",
              scale_factor, sim.cluster().node_count(), scale.intel_cpu_nodes,
              scale.amd_cpu_nodes, scale.v100_nodes, scale.a100_nodes,
              scale.h100_nodes);
  std::printf("simulating %.1f h at %.0f jobs/day...\n", hours,
              gen.jobs_per_day);

  common::TimestampMs next_update = clock->now_ms();
  sim.run_for(static_cast<int64_t>(hours * common::kMillisPerHour), 15000,
              [&](common::TimestampMs now) {
                stack.pipeline_step();
                if (now >= next_update) {
                  stack.update_api();
                  next_update = now + 60000;
                }
              });
  stack.update_api();

  // ---- operator dashboard ----
  tsdb::promql::Engine engine;
  common::TimestampMs now = clock->now_ms();
  auto scalar1 = [&](const std::string& expr) {
    auto value = engine.eval(*stack.hot_store(), expr, now);
    return value.vector.empty() ? 0.0 : value.vector[0].value;
  };

  std::printf("\n== cluster state after %.1f simulated hours ==\n", hours);
  std::printf("targets up:            %.0f / %zu\n", scalar1("sum(up)"),
              sim.cluster().node_count() + 1);
  std::printf("cluster power (IPMI):  %.1f kW\n",
              scalar1("sum(instance:ipmi_watts)") / 1000.0);
  std::printf("GPU power (DCGM):      %.1f kW\n",
              scalar1("sum(instance:gpu_watts)") / 1000.0);
  std::printf("running compute units: %.0f\n",
              scalar1("sum(ceems_compute_units)"));
  std::printf("emission factor (RTE): %.1f gCO2e/kWh\n",
              scalar1("avg(ceems_emissions_gCo2_kWh{provider=\"rte\"})"));

  auto per_group = engine.eval(
      *stack.hot_store(),
      "sum by (nodegroup) (ceems_job_power_watts)", now);
  std::printf("\n-- attributed job power by node group --\n");
  for (const auto& sample : per_group.vector) {
    std::printf("  %-10s %8.1f kW\n",
                std::string(*sample.labels.get("nodegroup")).c_str(),
                sample.value / 1000.0);
  }

  auto scrape_stats = stack.scraper().stats();
  auto hot = stack.hot_store()->stats();
  auto lt = stack.longterm()->stats();
  std::printf("\n-- storage --\n");
  std::printf("scrapes: %llu (%.3f%% failed)\n",
              (unsigned long long)scrape_stats.scrapes_total,
              scrape_stats.scrapes_total
                  ? 100.0 * scrape_stats.scrapes_failed /
                        scrape_stats.scrapes_total
                  : 0.0);
  std::printf("hot TSDB:   %8zu series %10zu samples (%.1f MiB)\n",
              hot.num_series, hot.num_samples,
              hot.approx_bytes / 1024.0 / 1024.0);
  std::printf("long-term:  %8zu series %10zu samples (%.1f MiB)\n",
              lt.num_series, lt.num_samples, lt.approx_bytes / 1024.0 / 1024.0);

  // ---- accounting ----
  std::printf("\n-- accounting (units DB) --\n");
  std::printf("units recorded: %zu  (submitted %llu)\n",
              stack.db().table_size(apiserver::kUnitsTable),
              (unsigned long long)sim.jobs_submitted());
  reldb::Query query;
  query.group_by = {"partition"};
  query.aggregates = {{reldb::AggFn::kCount, "", "units"},
                      {reldb::AggFn::kSum, "total_energy_joules", "joules"},
                      {reldb::AggFn::kSum, "total_emissions_grams", "gco2"}};
  query.order_by = "joules";
  query.descending = true;
  auto result = stack.db().query(apiserver::kUnitsTable, query);
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    std::printf("  %-8s units=%-4lld energy=%-11s emissions=%s\n",
                result.at(i, "partition").as_text().c_str(),
                (long long)result.at(i, "units").as_int(),
                dashboard::format_joules(result.at(i, "joules").as_real())
                    .c_str(),
                dashboard::format_co2(result.at(i, "gco2").as_real()).c_str());
  }

  // Operational alerts.
  auto alerts = stack.rules().active_alerts();
  std::printf("\n-- active alerts: %zu --\n", alerts.size());
  for (const auto& alert : alerts) {
    std::printf("  [%s] %s %s\n",
                alert.state == tsdb::AlertState::kFiring ? "FIRING"
                                                         : "pending",
                alert.name.c_str(), alert.labels.to_string().c_str());
  }

  // Operator analytics (§III-B): who is wasting allocation?
  std::printf("\n%s",
              apiserver::render_efficiency_report(
                  apiserver::build_efficiency_report(stack.db()), 5)
                  .c_str());

  // Daily churn figure the paper quotes for the real deployment.
  double churn_per_day = static_cast<double>(sim.jobs_submitted()) /
                         (hours / 24.0);
  std::printf("\njob churn: %.0f jobs/day at this scale "
              "(paper: thousands/day at 1400 nodes)\n",
              churn_per_day);
  std::printf("jean_zay OK\n");
  return 0;
}
