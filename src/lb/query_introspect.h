// PromQL query introspection for access control (§II-B.c): the LB parses
// the incoming query, walks every vector/matrix selector and pulls out the
// compute-unit uuids it references. The access rule mirrors CEEMS:
//   * every selector over a compute-unit metric must pin uuid with an
//     equality matcher (regex/negative matchers cannot be verified and are
//     rejected for non-admins);
//   * node-level metrics (no uuid label) are operator data — admin only.
#pragma once

#include <optional>
#include <set>
#include <string>

#include "tsdb/promql_ast.h"

namespace ceems::lb {

struct IntrospectResult {
  bool parse_ok = false;
  std::string error;
  // uuids referenced via uuid="..." equality matchers.
  std::set<std::string> uuids;
  // True if some selector has no equality uuid matcher (uuid-less metric,
  // regex matcher, ...) — such queries need admin rights.
  bool has_unverifiable_selector = false;
};

IntrospectResult introspect_query(const std::string& query);

}  // namespace ceems::lb
