file(REMOVE_RECURSE
  "libceems_reldb.a"
)
