#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "http/client.h"
#include "http/server.h"

namespace ceems::http {
namespace {

// ---------- message helpers ----------

TEST(Message, QueryParams) {
  Request request;
  request.target = "/api/v1/query?query=up%7Bx%3D%22y%22%7D&time=1.5&time=2";
  EXPECT_EQ(request.path(), "/api/v1/query");
  auto params = request.query_params();
  EXPECT_EQ(params["query"], "up{x=\"y\"}");
  EXPECT_EQ(params["time"], "1.5");  // first wins
  auto all = request.query_param_all("time");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[1], "2");
}

TEST(Message, HeadersCaseInsensitive) {
  Request request;
  request.headers["Content-Type"] = "text/plain";
  EXPECT_TRUE(request.header("content-type").has_value());
  EXPECT_TRUE(request.header("CONTENT-TYPE").has_value());
}

TEST(Message, UrlEncodeDecode) {
  std::string original = "a b+c/d?e=f&g\"h";
  EXPECT_EQ(url_decode(url_encode(original)), original);
  EXPECT_EQ(url_decode("a+b"), "a b");
  EXPECT_EQ(url_decode("%41%zz"), "A%zz");  // bad escape passes through
}

TEST(Message, Base64RoundTrip) {
  for (const std::string& text :
       {std::string(""), std::string("a"), std::string("ab"),
        std::string("abc"), std::string("user:pass"),
        std::string("\x00\xff\x7f", 3)}) {
    EXPECT_EQ(*base64_decode(base64_encode(text)), text);
  }
  EXPECT_FALSE(base64_decode("!!!").has_value());
}

TEST(Message, BasicAuthRoundTrip) {
  std::string header = basic_auth_header("prometheus", "s3cret");
  auto creds = decode_basic_auth(header);
  ASSERT_TRUE(creds.has_value());
  EXPECT_EQ(creds->first, "prometheus");
  EXPECT_EQ(creds->second, "s3cret");
  EXPECT_FALSE(decode_basic_auth("Bearer xyz").has_value());
}

// ---------- server + client over real sockets ----------

class HttpRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<Server>(ServerConfig{});
    server_->handle("/hello", [](const Request& request) {
      Response response = Response::text(200, "hi " + request.method);
      return response;
    });
    server_->handle("/echo", [](const Request& request) {
      return Response::text(200, request.body);
    });
    server_->handle_prefix("/api/", [](const Request& request) {
      return Response::json(200, "{\"path\":\"" + request.path() + "\"}");
    });
    server_->start();
  }
  void TearDown() override { server_->stop(); }

  std::unique_ptr<Server> server_;
};

TEST_F(HttpRoundTrip, GetExactRoute) {
  Client client;
  auto result = client.get(server_->base_url() + "/hello");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(result.response.body, "hi GET");
}

TEST_F(HttpRoundTrip, PostBodyEchoed) {
  Client client;
  std::string body(100000, 'x');  // larger than one recv chunk
  auto result = client.post(server_->base_url() + "/echo", body);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.response.body, body);
}

TEST_F(HttpRoundTrip, PrefixRoute) {
  Client client;
  auto result = client.get(server_->base_url() + "/api/v1/anything");
  ASSERT_TRUE(result.ok);
  EXPECT_NE(result.response.body.find("/api/v1/anything"), std::string::npos);
}

TEST_F(HttpRoundTrip, UnknownRouteIs404) {
  Client client;
  auto result = client.get(server_->base_url() + "/nope");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.response.status, 404);
}

TEST_F(HttpRoundTrip, KeepAliveReusesConnection) {
  Client client;
  for (int i = 0; i < 20; ++i) {
    auto result = client.get(server_->base_url() + "/hello");
    ASSERT_TRUE(result.ok) << result.error;
  }
  EXPECT_EQ(server_->requests_served(), 20u);
}

TEST_F(HttpRoundTrip, ConcurrentClients) {
  constexpr int kThreads = 8, kRequests = 25;
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Client client;
      for (int i = 0; i < kRequests; ++i) {
        auto result = client.get(server_->base_url() + "/hello");
        if (result.ok && result.response.status == 200) ++ok_count;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok_count.load(), kThreads * kRequests);
}

TEST_F(HttpRoundTrip, HandlerExceptionBecomes500) {
  server_->handle("/boom", [](const Request&) -> Response {
    throw std::runtime_error("kaboom");
  });
  Client client;
  auto result = client.get(server_->base_url() + "/boom");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.response.status, 500);
  EXPECT_NE(result.response.body.find("kaboom"), std::string::npos);
}

TEST(HttpAuth, BasicAuthEnforced) {
  ServerConfig config;
  config.basic_auth = {"ceems", "secret"};
  Server server(config);
  server.handle("/metrics",
                [](const Request&) { return Response::text(200, "data"); });
  server.start();

  Client anonymous;
  auto denied = anonymous.get(server.base_url() + "/metrics");
  ASSERT_TRUE(denied.ok);
  EXPECT_EQ(denied.response.status, 401);
  EXPECT_TRUE(denied.response.headers.count("WWW-Authenticate"));

  ClientConfig wrong_config;
  wrong_config.basic_auth = {"ceems", "wrong"};
  Client wrong(wrong_config);
  auto bad = wrong.get(server.base_url() + "/metrics");
  ASSERT_TRUE(bad.ok);
  EXPECT_EQ(bad.response.status, 401);

  ClientConfig auth_config;
  auth_config.basic_auth = {"ceems", "secret"};
  Client authorized(auth_config);
  auto granted = authorized.get(server.base_url() + "/metrics");
  ASSERT_TRUE(granted.ok);
  EXPECT_EQ(granted.response.status, 200);
  EXPECT_EQ(granted.response.body, "data");
  server.stop();
}

TEST(HttpFilter, ConnectionFilterRejects) {
  ServerConfig config;
  config.connection_filter = [](const std::string&) { return false; };
  Server server(config);
  server.handle("/x", [](const Request&) { return Response::text(200, "y"); });
  server.start();
  ClientConfig client_config;
  client_config.io_timeout_ms = 500;
  Client client(client_config);
  auto result = client.get(server.base_url() + "/x");
  EXPECT_FALSE(result.ok);  // connection closed before any response
  server.stop();
}

TEST(HttpClient, ConnectRefusedReportsTransportError) {
  ClientConfig config;
  config.connect_timeout_ms = 300;
  Client client(config);
  auto result = client.get("http://127.0.0.1:1/metrics");
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST(HttpClient, BadUrlRejected) {
  Client client;
  EXPECT_FALSE(client.get("ftp://example.com/x").ok);
  EXPECT_FALSE(client.get("http://127.0.0.1:99999/x").ok);
}

TEST(HttpServer, OversizedBodyRejected) {
  ServerConfig config;
  config.max_body_bytes = 1024;
  Server server(config);
  server.handle("/echo", [](const Request& request) {
    return Response::text(200, request.body);
  });
  server.start();
  ClientConfig client_config;
  client_config.io_timeout_ms = 1000;
  Client client(client_config);
  // Within the limit: fine.
  auto small = client.post(server.base_url() + "/echo", std::string(512, 'x'));
  ASSERT_TRUE(small.ok);
  EXPECT_EQ(small.response.status, 200);
  // Over the limit: the server drops the connection rather than buffering.
  Client fresh(client_config);
  auto big = fresh.post(server.base_url() + "/echo", std::string(4096, 'x'));
  EXPECT_FALSE(big.ok);
  server.stop();
}

TEST(HttpServer, SlowClientTimesOutWithoutBlockingOthers) {
  Server server{ServerConfig{}};
  server.handle("/ping", [](const Request&) {
    return Response::text(200, "pong");
  });
  server.start();
  // A connection that sends nothing: the per-connection idle timeout must
  // reap it while other clients keep being served.
  int idle_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(idle_fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  Client client;
  for (int i = 0; i < 5; ++i) {
    auto result = client.get(server.base_url() + "/ping");
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.response.body, "pong");
  }
  ::close(idle_fd);
  server.stop();
}

TEST(HttpServer, GarbageRequestLineClosesConnection) {
  Server server{ServerConfig{}};
  server.handle("/x", [](const Request&) { return Response::text(200, "y"); });
  server.start();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char garbage[] = "NOT_HTTP\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage) - 1, 0), 0);
  char buffer[64];
  // Server closes without a response (no valid request line).
  ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
  EXPECT_LE(n, 0);
  ::close(fd);
  // And stays healthy.
  Client client;
  EXPECT_TRUE(client.get(server.base_url() + "/x").ok);
  server.stop();
}

TEST(HttpServer, EphemeralPortAssigned) {
  Server server{ServerConfig{}};
  server.start();
  EXPECT_GT(server.port(), 0);
  server.stop();
}

// ---------- body framing: empty vs truncated ----------

// One-connection raw responder: accepts a single client, reads the request
// and writes `wire` verbatim, then closes — for responses a well-behaved
// Server cannot produce (truncated bodies, missing framing headers).
class RawResponder {
 public:
  explicit RawResponder(std::string wire) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 1), 0);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this, wire = std::move(wire)] {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        char buffer[4096];
        ::recv(fd, buffer, sizeof(buffer), 0);
        ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
        ::close(fd);
      }
    });
  }
  ~RawResponder() {
    thread_.join();
    ::close(listen_fd_);
  }
  std::string url(const std::string& path) const {
    return "http://127.0.0.1:" + std::to_string(port_) + path;
  }

 private:
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

TEST(HttpClient, ContentLengthZeroIsEmptyBodyNotError) {
  RawResponder responder(
      "HTTP/1.1 200 OK\r\nContent-Length: 0\r\nConnection: close\r\n\r\n");
  ClientConfig config;
  config.io_timeout_ms = 1000;
  Client client(config);
  auto result = client.get(responder.url("/empty"));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.response.status, 200);
  EXPECT_TRUE(result.response.body.empty());
}

TEST(HttpClient, ShortBodyIsTruncationError) {
  // Promises 100 bytes, delivers 7, closes: must surface as a transport
  // error, not an ok response with a short body.
  RawResponder responder(
      "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\npartial");
  ClientConfig config;
  config.io_timeout_ms = 1000;
  Client client(config);
  auto result = client.get(responder.url("/truncated"));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("truncated body"), std::string::npos)
      << result.error;
}

TEST(HttpClient, NoContentLengthWithCloseReadsToEof) {
  RawResponder responder(
      "HTTP/1.1 200 OK\r\nConnection: close\r\n\r\nuntil-eof");
  ClientConfig config;
  config.io_timeout_ms = 1000;
  Client client(config);
  auto result = client.get(responder.url("/eof"));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.response.body, "until-eof");
}

// ---------- retries + fault injection ----------

TEST(HttpClient, RetriesRecoverFlakyServer) {
  Server server{ServerConfig{}};
  std::atomic<int> hits{0};
  server.handle("/flaky", [&](const Request&) {
    return ++hits <= 2 ? Response::text(503, "not yet")
                       : Response::text(200, "recovered");
  });
  server.start();
  ClientConfig config;
  config.retry.max_retries = 3;
  config.retry.initial_backoff_ms = 0;  // no clock: immediate retries
  Client client(config);
  auto result = client.get(server.base_url() + "/flaky");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(result.response.body, "recovered");
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(client.stats().retries, 2u);
  server.stop();
}

TEST(HttpClient, NonRetryableStatusReturnsImmediately) {
  Server server{ServerConfig{}};
  std::atomic<int> hits{0};
  server.handle("/gone", [&](const Request&) {
    ++hits;
    return Response::text(404, "nope");
  });
  server.start();
  ClientConfig config;
  config.retry.max_retries = 3;
  config.retry.initial_backoff_ms = 0;
  Client client(config);
  auto result = client.get(server.base_url() + "/gone");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.response.status, 404);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(hits.load(), 1);
  server.stop();
}

TEST(HttpClient, FaultHookInjectsAndRetriesConsume) {
  int decisions = 0;
  ClientConfig config;
  config.retry.max_retries = 2;
  config.retry.initial_backoff_ms = 0;
  config.fault_hook = [&](std::string_view site, std::string_view) {
    EXPECT_EQ(site, "http.client");
    faults::FaultDecision fault;
    if (decisions++ < 2) fault.kind = faults::FaultKind::kConnectTimeout;
    return fault;
  };
  Server server{ServerConfig{}};
  server.handle("/x", [](const Request&) { return Response::text(200, "y"); });
  server.start();
  Client client(config);
  auto result = client.get(server.base_url() + "/x");
  ASSERT_TRUE(result.ok) << result.error;  // third attempt passes the hook
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(client.stats().faults_injected, 2u);
  server.stop();
}

TEST(HttpClient, InjectedStatusFaultSynthesizesResponse) {
  ClientConfig config;
  config.fault_hook = [](std::string_view, std::string_view) {
    faults::FaultDecision fault;
    fault.kind = faults::FaultKind::kHttpStatus;
    fault.http_status = 429;
    return fault;
  };
  config.retry.retry_on_status = false;
  Client client(config);
  // No server needed: the fault short-circuits before the socket.
  auto result = client.get("http://127.0.0.1:1/x");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.response.status, 429);
}

}  // namespace
}  // namespace ceems::http
