# Empty compiler generated dependencies file for openstack_cloud.
# This may be replaced when dependencies are built.
