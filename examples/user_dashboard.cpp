// The three Fig. 2 dashboards (experiments E5/E6/E7), rendered through the
// REAL wire path: a Grafana-style client sends the X-Grafana-User header,
// the CEEMS LB enforces ownership before proxying PromQL to the query
// backends, and the API server serves the aggregate panels.
//
// Also demonstrates the access-control story: the same job queried as its
// owner (charts render) and as a stranger (denied by the LB).
//
//   ./user_dashboard [minutes=45]
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "core/stack.h"
#include "dashboard/ceems_dashboards.h"

using namespace ceems;

int main(int argc, char** argv) {
  common::set_log_level(common::LogLevel::kError);
  double minutes = argc > 1 ? std::atof(argv[1]) : 45.0;

  auto clock = common::make_sim_clock(1700000000000LL);
  slurm::JeanZayScale scale = slurm::JeanZayScale{}.scaled(0.006);
  auto gen = slurm::make_jean_zay_workload_config(scale, 4000);
  slurm::ClusterSim sim(clock, slurm::make_jean_zay_cluster(clock, scale, 7),
                        gen, 7);
  core::CeemsStack stack(sim, {});

  common::TimestampMs start = clock->now_ms();
  common::TimestampMs next_update = start;
  sim.run_for(static_cast<int64_t>(minutes * common::kMillisPerMinute), 10000,
              [&](common::TimestampMs now) {
                stack.pipeline_step();
                if (now >= next_update) {
                  stack.update_api();
                  next_update = now + 60000;
                }
              });
  stack.update_api();
  stack.start_servers();

  // Pick the user with the most recorded energy.
  reldb::Query query;
  query.group_by = {"user"};
  query.aggregates = {{reldb::AggFn::kSum, "total_energy_joules", "joules"}};
  query.order_by = "joules";
  query.descending = true;
  query.limit = 1;
  auto top = stack.db().query(apiserver::kUnitsTable, query);
  if (top.rows.empty()) {
    std::printf("no units recorded — run longer\n");
    return 1;
  }
  std::string user = top.at(0, "user").as_text();

  dashboard::GrafanaClient client(stack.lb_url(), stack.api_url(), user);
  common::TimestampMs now = clock->now_ms();

  // Fig. 2a — aggregate usage stat tiles.
  std::printf("%s\n", dashboard::render_user_aggregate_dashboard(
                          client, start, now)
                          .c_str());

  // Fig. 2b — the user's compute units with aggregates.
  std::printf("%s\n",
              dashboard::render_user_job_list(client, start, now, 12).c_str());

  // Fig. 2c — time series of the user's longest-running unit.
  reldb::Query longest;
  longest.where = {{"user", reldb::Predicate::Op::kEq, reldb::Value(user)}};
  longest.order_by = "elapsed_ms";
  longest.descending = true;
  longest.limit = 1;
  auto unit_row = stack.db().query(apiserver::kUnitsTable, longest);
  std::string uuid = unit_row.at(0, "uuid").as_text();
  std::printf("%s\n", dashboard::render_job_timeseries(
                          client, uuid, now - 30 * 60000, now, 60000)
                          .c_str());

  // Access control in action: a stranger asks for the same job.
  dashboard::GrafanaClient mallory(stack.lb_url(), stack.api_url(), "mallory");
  auto denied = mallory.instant_query(
      "ceems_job_power_watts{uuid=\"" + uuid + "\"}", now);
  std::printf("-- access control --\n");
  std::printf("owner '%s' querying job %s: OK\n", user.c_str(), uuid.c_str());
  std::printf("stranger 'mallory' querying job %s: HTTP %d (%s)\n",
              uuid.c_str(), denied.http_status,
              denied.ok ? "allowed?!" : "denied by CEEMS LB");

  stack.stop_servers();
  std::printf("\nuser_dashboard OK\n");
  return denied.http_status == 403 ? 0 : 1;
}
