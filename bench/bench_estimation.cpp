// E2 — accuracy of the paper's Eq. (1) energy attribution, measured
// against the simulator's causal ground truth, with the naive equal-split
// estimator as the ablation baseline (DESIGN.md §4.2).
//
// The paper asserts the CPU-time-proportional model "stays a very good
// approximation" without being able to quantify it (no per-job ground
// truth exists on real hardware). The simulator knows the truth, so this
// bench regenerates the claim as a table:
//
//   cluster load | jobs | Eq.1 median ratio / p90 | equal-split median / p90
//
// Expected shape: Eq. 1 ratios sit above 1 (it deliberately charges jobs
// their share of the node's idle burn, which causal ground truth does
// not), with a tight spread; equal-split is strictly worse at every load
// and its tail explodes as churn rises, since it ignores per-job activity
// entirely. Also measured: the recording-rule evaluation cost per sweep
// (the price of rule-based extensibility).
#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/strutil.h"

#include <algorithm>
#include <cstdio>

#include "core/stack.h"

using namespace ceems;

namespace {

struct AccuracyRow {
  double jobs_per_day;
  int jobs_compared = 0;
  double eq1_median = 0, eq1_p90 = 0;
  double equal_median = 0, equal_p90 = 0;
};

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  double rank = q * static_cast<double>(values.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(values.size() - 1, lo + 1);
  return values[lo] + (rank - static_cast<double>(lo)) *
                          (values[hi] - values[lo]);
}

AccuracyRow run_accuracy(double jobs_per_day, uint64_t seed) {
  auto clock = common::make_sim_clock(1700000000000LL);
  slurm::JeanZayScale scale = slurm::JeanZayScale{}.scaled(0.006);
  auto gen = slurm::make_jean_zay_workload_config(scale, jobs_per_day);
  gen.seed = seed;
  slurm::ClusterSim sim(clock, slurm::make_jean_zay_cluster(clock, scale, seed),
                        gen, seed);
  core::StackConfig config;
  config.include_equal_split_baseline = true;
  core::CeemsStack stack(sim, config);

  // Equal-split energies are accumulated directly from the baseline rule
  // series, integrating avg power × window like the updater does.
  std::map<std::string, double> equal_energy;
  tsdb::promql::Engine engine;
  common::TimestampMs next_update = clock->now_ms();
  common::TimestampMs last_equal = clock->now_ms();
  sim.run_for(3 * common::kMillisPerHour, 15000, [&](common::TimestampMs now) {
    stack.pipeline_step();
    if (now >= next_update) {
      stack.update_api();
      next_update = now + 60000;
      double window_sec = static_cast<double>(now - last_equal) / 1000.0;
      try {
        auto value = engine.eval(
            *stack.hot_store(),
            "sum by (uuid) (avg_over_time(ceems_job_power_watts_equalsplit[" +
                common::format_duration_ms(now - last_equal) + "]))",
            now);
        for (const auto& sample : value.vector) {
          equal_energy[std::string(*sample.labels.get("uuid"))] +=
              sample.value * window_sec;
        }
      } catch (const std::exception&) {
      }
      last_equal = now;
    }
  });
  stack.update_api();

  AccuracyRow row;
  row.jobs_per_day = jobs_per_day;
  std::vector<double> eq1_ratios, equal_ratios;
  for (const auto& job : sim.dbd().all_jobs()) {
    if (!job.finished() || job.hostnames.size() != 1) continue;
    if (job.end_time_ms - job.start_time_ms < 15 * 60 * 1000) continue;
    auto unit_row = stack.db().get(apiserver::kUnitsTable,
                                   reldb::Value(std::to_string(job.job_id)));
    if (!unit_row) continue;
    auto unit = apiserver::unit_from_row(*unit_row);
    if (unit.total_energy_joules <= 0) continue;
    auto truth = sim.cluster().node(job.hostnames[0])
                     ->job_energy_truth(job.job_id);
    if (truth.total_j() <= 0) continue;
    eq1_ratios.push_back(unit.total_energy_joules / truth.total_j());
    auto equal_it = equal_energy.find(unit.uuid);
    if (equal_it != equal_energy.end() && equal_it->second > 0) {
      equal_ratios.push_back(equal_it->second / truth.total_j());
    }
  }
  row.jobs_compared = static_cast<int>(eq1_ratios.size());
  row.eq1_median = percentile(eq1_ratios, 0.5);
  row.eq1_p90 = percentile(eq1_ratios, 0.9);
  row.equal_median = percentile(equal_ratios, 0.5);
  row.equal_p90 = percentile(equal_ratios, 0.9);
  return row;
}

void BM_rule_sweep(benchmark::State& state) {
  // Cost of one full recording-rule evaluation over a populated store.
  auto clock = common::make_sim_clock(1700000000000LL);
  slurm::JeanZayScale scale = slurm::JeanZayScale{}.scaled(0.01);
  auto gen = slurm::make_jean_zay_workload_config(scale, 3000);
  slurm::ClusterSim sim(clock, slurm::make_jean_zay_cluster(clock, scale, 1),
                        gen, 1);
  core::CeemsStack stack(sim, {});
  sim.run_for(20 * common::kMillisPerMinute, 15000,
              [&](common::TimestampMs) { stack.pipeline_step(); });
  for (auto _ : state) {
    auto stats = stack.rules().evaluate_all(clock->now_ms());
    benchmark::DoNotOptimize(stats);
  }
  state.counters["nodes"] =
      static_cast<double>(sim.cluster().node_count());
}
BENCHMARK(BM_rule_sweep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  common::set_log_level(common::LogLevel::kError);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\nE2 — per-job energy estimate / ground-truth ratio "
              "(3 simulated hours, ~9-node cluster)\n");
  std::printf("%-14s %6s | %-21s | %-21s\n", "load (jobs/d)", "jobs",
              "Eq.1  median    p90", "equal-split med  p90");
  for (double jobs_per_day : {800.0, 3000.0, 9000.0}) {
    AccuracyRow row = run_accuracy(jobs_per_day, 42);
    std::printf("%-14.0f %6d |    %6.2f  %6.2f     |     %6.2f  %6.2f\n",
                row.jobs_per_day, row.jobs_compared, row.eq1_median,
                row.eq1_p90, row.equal_median, row.equal_p90);
  }
  std::printf("\nratio 1.0 = estimate equals causal ground truth. Eq. 1 "
              "over-charges idle burn by design\nbut tracks per-job "
              "activity; equal-split ignores activity, and its tail "
              "(p90)\ndegenerates as churn rises.\n");
  return 0;
}
