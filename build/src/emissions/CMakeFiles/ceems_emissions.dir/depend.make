# Empty dependencies file for ceems_emissions.
# This may be replaced when dependencies are built.
