file(REMOVE_RECURSE
  "CMakeFiles/ceems_slurm.dir/cluster.cpp.o"
  "CMakeFiles/ceems_slurm.dir/cluster.cpp.o.d"
  "CMakeFiles/ceems_slurm.dir/cluster_sim.cpp.o"
  "CMakeFiles/ceems_slurm.dir/cluster_sim.cpp.o.d"
  "CMakeFiles/ceems_slurm.dir/job.cpp.o"
  "CMakeFiles/ceems_slurm.dir/job.cpp.o.d"
  "CMakeFiles/ceems_slurm.dir/scheduler.cpp.o"
  "CMakeFiles/ceems_slurm.dir/scheduler.cpp.o.d"
  "CMakeFiles/ceems_slurm.dir/slurmdbd.cpp.o"
  "CMakeFiles/ceems_slurm.dir/slurmdbd.cpp.o.d"
  "CMakeFiles/ceems_slurm.dir/workload_gen.cpp.o"
  "CMakeFiles/ceems_slurm.dir/workload_gen.cpp.o.d"
  "libceems_slurm.a"
  "libceems_slurm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceems_slurm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
