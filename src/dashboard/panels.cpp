#include "dashboard/panels.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ceems::dashboard {

namespace {
std::string pad(const std::string& text, std::size_t width) {
  if (text.size() >= width) return text.substr(0, width);
  return text + std::string(width - text.size(), ' ');
}

std::string title_bar(const std::string& title, std::size_t width) {
  std::string out = "== " + title + " ";
  if (out.size() < width) out += std::string(width - out.size(), '=');
  return out + "\n";
}
}  // namespace

std::string render_table(const std::string& title,
                         const std::vector<std::string>& columns,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    widths[c] = columns[c].size();
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < columns.size() && c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::size_t total = 1;
  for (std::size_t w : widths) total += w + 3;

  std::string out = title_bar(title, total);
  out += "|";
  for (std::size_t c = 0; c < columns.size(); ++c) {
    out += " " + pad(columns[c], widths[c]) + " |";
  }
  out += "\n|";
  for (std::size_t c = 0; c < columns.size(); ++c) {
    out += std::string(widths[c] + 2, '-') + "|";
  }
  out += "\n";
  for (const auto& row : rows) {
    out += "|";
    for (std::size_t c = 0; c < columns.size(); ++c) {
      out += " " + pad(c < row.size() ? row[c] : "", widths[c]) + " |";
    }
    out += "\n";
  }
  return out;
}

std::string render_stats(const std::string& title,
                         const std::vector<Stat>& stats) {
  std::size_t tile = 0;
  for (const auto& stat : stats) {
    tile = std::max({tile, stat.label.size(), stat.value.size()});
  }
  tile += 2;
  std::string out = title_bar(title, (tile + 3) * stats.size());
  std::string values = "|", labels = "|";
  for (const auto& stat : stats) {
    values += " " + pad(stat.value, tile) + " |";
    labels += " " + pad(stat.label, tile) + " |";
  }
  out += values + "\n" + labels + "\n";
  return out;
}

std::string render_chart(const std::string& title,
                         const std::vector<ChartSeries>& series, int width,
                         int height) {
  std::string out = title_bar(title, static_cast<std::size_t>(width) + 10);
  if (series.empty() || height < 2 || width < 8) return out + "(no data)\n";

  common::TimestampMs t_min = INT64_MAX, t_max = INT64_MIN;
  double v_min = INFINITY, v_max = -INFINITY;
  for (const auto& s : series) {
    for (const auto& point : s.points) {
      t_min = std::min(t_min, point.t);
      t_max = std::max(t_max, point.t);
      v_min = std::min(v_min, point.v);
      v_max = std::max(v_max, point.v);
    }
  }
  if (t_min > t_max) return out + "(no data)\n";
  if (v_max <= v_min) v_max = v_min + 1;

  // One glyph per series, plotted into a character grid.
  static const char kGlyphs[] = "*o+x#@%&";
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  for (std::size_t s = 0; s < series.size(); ++s) {
    char glyph = kGlyphs[s % (sizeof(kGlyphs) - 1)];
    for (const auto& point : series[s].points) {
      int x = t_max == t_min
                  ? 0
                  : static_cast<int>(
                        static_cast<double>(point.t - t_min) /
                        static_cast<double>(t_max - t_min) * (width - 1));
      int y = static_cast<int>((point.v - v_min) / (v_max - v_min) *
                               (height - 1));
      int row = height - 1 - y;
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(x)] = glyph;
    }
  }
  char label[64];
  std::snprintf(label, sizeof(label), "%8.4g ", v_max);
  out += std::string(label) + "+" + grid[0] + "\n";
  for (int r = 1; r < height - 1; ++r) {
    out += "         |" + grid[static_cast<std::size_t>(r)] + "\n";
  }
  std::snprintf(label, sizeof(label), "%8.4g ", v_min);
  out += std::string(label) + "+" + grid[static_cast<std::size_t>(height - 1)] +
         "\n";
  out += "          " + std::string(static_cast<std::size_t>(width), '-') +
         "\n";
  for (std::size_t s = 0; s < series.size(); ++s) {
    out += "          ";
    out += kGlyphs[s % (sizeof(kGlyphs) - 1)];
    out += " " + series[s].name + "\n";
  }
  return out;
}

std::string format_bytes(double bytes) {
  char buf[32];
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  int unit = 0;
  while (std::fabs(bytes) >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  std::snprintf(buf, sizeof(buf), "%.1f %s", bytes, units[unit]);
  return buf;
}

std::string format_joules(double joules) {
  char buf[32];
  if (joules >= 3.6e6) {
    std::snprintf(buf, sizeof(buf), "%.2f kWh", joules / 3.6e6);
  } else if (joules >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1f MJ", joules / 1e6);
  } else if (joules >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1f kJ", joules / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f J", joules);
  }
  return buf;
}

std::string format_co2(double grams) {
  char buf[32];
  if (grams >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.2f kgCO2e", grams / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f gCO2e", grams);
  }
  return buf;
}

std::string format_duration(int64_t millis) {
  char buf[48];
  int64_t seconds = millis / 1000;
  if (seconds >= 86400) {
    std::snprintf(buf, sizeof(buf), "%lldd %lldh",
                  static_cast<long long>(seconds / 86400),
                  static_cast<long long>(seconds % 86400 / 3600));
  } else if (seconds >= 3600) {
    std::snprintf(buf, sizeof(buf), "%lldh %lldm",
                  static_cast<long long>(seconds / 3600),
                  static_cast<long long>(seconds % 3600 / 60));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldm %llds",
                  static_cast<long long>(seconds / 60),
                  static_cast<long long>(seconds % 60));
  }
  return buf;
}

}  // namespace ceems::dashboard
