#include "tsdb/promql_lexer.h"

#include <cctype>

#include "common/strutil.h"

namespace ceems::tsdb::promql {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool is_ident_char(char c) {
  return is_ident_start(c) || std::isdigit(static_cast<unsigned char>(c));
}
bool is_duration_unit(char c) {
  return c == 's' || c == 'm' || c == 'h' || c == 'd' || c == 'w' || c == 'y';
}

}  // namespace

std::vector<Token> lex(std::string_view input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  auto fail = [&](const std::string& message) {
    throw ParseError("promql lex error at " + std::to_string(i) + ": " +
                     message);
  };

  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.pos = i;
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < input.size() &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      // Number or duration.
      std::size_t start = i;
      while (i < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[i])) ||
              input[i] == '.'))
        ++i;
      if (i < input.size() && is_duration_unit(input[i]) &&
          !(input[i] == 'e' /* exponent cannot happen: e not a unit */)) {
        // Duration: continue consuming number+unit pairs (1h30m).
        while (i < input.size() &&
               (std::isdigit(static_cast<unsigned char>(input[i])) ||
                is_duration_unit(input[i])))
          ++i;
        auto duration =
            common::parse_duration_ms(input.substr(start, i - start));
        if (!duration) fail("bad duration");
        token.type = TokenType::kDuration;
        token.duration_ms = *duration;
        token.text = std::string(input.substr(start, i - start));
      } else {
        // Scientific notation tail.
        if (i < input.size() && (input[i] == 'e' || input[i] == 'E')) {
          ++i;
          if (i < input.size() && (input[i] == '+' || input[i] == '-')) ++i;
          while (i < input.size() &&
                 std::isdigit(static_cast<unsigned char>(input[i])))
            ++i;
        }
        auto value = common::parse_double(input.substr(start, i - start));
        if (!value) fail("bad number");
        token.type = TokenType::kNumber;
        token.number = *value;
        token.text = std::string(input.substr(start, i - start));
      }
      tokens.push_back(std::move(token));
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t start = i;
      while (i < input.size() && is_ident_char(input[i])) ++i;
      token.type = TokenType::kIdentifier;
      token.text = std::string(input.substr(start, i - start));
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      std::string value;
      while (i < input.size() && input[i] != quote) {
        if (input[i] == '\\' && i + 1 < input.size()) {
          char e = input[i + 1];
          if (e == 'n') value += '\n';
          else if (e == 't') value += '\t';
          else value += e;
          i += 2;
        } else {
          value += input[i++];
        }
      }
      if (i >= input.size()) fail("unterminated string");
      ++i;  // closing quote
      token.type = TokenType::kString;
      token.text = std::move(value);
      tokens.push_back(std::move(token));
      continue;
    }
    switch (c) {
      case '(': token.type = TokenType::kLParen; ++i; break;
      case ')': token.type = TokenType::kRParen; ++i; break;
      case '{': token.type = TokenType::kLBrace; ++i; break;
      case '}': token.type = TokenType::kRBrace; ++i; break;
      case '[': token.type = TokenType::kLBracket; ++i; break;
      case ']': token.type = TokenType::kRBracket; ++i; break;
      case ',': token.type = TokenType::kComma; ++i; break;
      case '+': case '-': case '*': case '/': case '%': case '^': {
        token.type = TokenType::kOp;
        token.text = std::string(1, c);
        ++i;
        break;
      }
      case '=': {
        token.type = TokenType::kOp;
        if (i + 1 < input.size() && input[i + 1] == '=') {
          token.text = "==";
          i += 2;
        } else if (i + 1 < input.size() && input[i + 1] == '~') {
          token.text = "=~";
          i += 2;
        } else {
          token.text = "=";
          ++i;
        }
        break;
      }
      case '!': {
        token.type = TokenType::kOp;
        if (i + 1 < input.size() && input[i + 1] == '=') {
          token.text = "!=";
          i += 2;
        } else if (i + 1 < input.size() && input[i + 1] == '~') {
          token.text = "!~";
          i += 2;
        } else {
          fail("unexpected '!'");
        }
        break;
      }
      case '<': case '>': {
        token.type = TokenType::kOp;
        if (i + 1 < input.size() && input[i + 1] == '=') {
          token.text = std::string(1, c) + "=";
          i += 2;
        } else {
          token.text = std::string(1, c);
          ++i;
        }
        break;
      }
      default:
        fail(std::string("unexpected character '") + c + "'");
    }
    tokens.push_back(std::move(token));
  }
  Token eof;
  eof.type = TokenType::kEof;
  eof.pos = input.size();
  tokens.push_back(eof);
  return tokens;
}

}  // namespace ceems::tsdb::promql
