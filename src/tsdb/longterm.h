// Long-term store — the Thanos analogue of Fig. 1. The hot TSDB keeps raw
// high-resolution samples on "local disk"; this store replicates them and,
// like the Thanos compactor, maintains a ladder of pre-aggregated
// resolution levels (e.g. raw → 5m → 1h): cursor-driven compaction folds
// raw samples into per-bucket {count, sum, min, max, first, last, inc}
// columns (tsdb/chunk.h AggBucket) as soon as a bucket can no longer
// receive samples, raw data past the downsample horizon is purged, and
// each level enforces its own retention. It implements Queryable two ways:
// select() merges a last-per-bucket history synthesised from the finest
// aggregate level with the raw tail (so the PromQL engine and the HTTP API
// work unchanged), and select_agg() hands the resolution-aware planner
// whole bucket columns when a level covers the requested span exactly.
#pragma once

#include <memory>
#include <mutex>

#include "tsdb/storage.h"

namespace ceems::tsdb {

// One rung of the resolution ladder.
struct AggLevelConfig {
  // Bucket width. Levels must be listed in ascending width and each
  // coarser width a multiple of every finer one (5m → 1h), so one purge
  // boundary can align to the whole ladder.
  int64_t resolution_ms = 5 * common::kMillisPerMinute;
  // Retention of this level's buckets (0 = infinite). Coarser levels
  // typically keep more history than finer ones.
  int64_t retention_ms = 0;
};

struct LongTermConfig {
  // Raw samples older than this get aggregated away on the next
  // compaction (the finest ladder level takes over as their history).
  int64_t downsample_after_ms = 2 * common::kMillisPerHour;
  // Legacy single-level knobs: when `levels` is empty the ladder is one
  // level of {resolution_ms, retention_ms}. Kept so existing configs and
  // call sites keep meaning what they meant.
  int64_t resolution_ms = 5 * common::kMillisPerMinute;
  int64_t retention_ms = 0;
  // Explicit resolution ladder; overrides the legacy knobs when set.
  std::vector<AggLevelConfig> levels;
};

// Counters for how queries were served. select() splices the synthesised
// history with still-compressed raw chunks; spliced_points_copied counts
// samples that had to be decoded and filtered because a raw slice
// overlapped the history — zero under the compaction invariant (raw is
// only purged up to a boundary the ladder has fully aggregated), so a
// nonzero value flags a horizon bug. The agg counters are per ladder
// level, index-aligned with agg_resolutions(): how many select_agg()
// calls each level answered and how many bucket rows it returned —
// points_scanned is the headline number the resolution-aware planner
// drives down versus raw_points_scanned.
struct LongTermSelectStats {
  uint64_t chunk_backed_views = 0;
  uint64_t spliced_views = 0;
  uint64_t spliced_points_copied = 0;
  // select() traffic: calls and total samples in the returned views.
  uint64_t raw_selects = 0;
  uint64_t raw_points_scanned = 0;
  // select_agg() traffic: refusals (no such level / incomplete coverage),
  // and per-level hits / bucket rows returned.
  uint64_t agg_rejects = 0;
  std::vector<uint64_t> level_hits;
  std::vector<uint64_t> level_points_scanned;
};

class LongTermStore final : public Queryable {
 public:
  explicit LongTermStore(LongTermConfig config = {});

  // Pulls new samples from the hot store (everything newer than the last
  // sync cursor). Returns samples copied. Relies on the replication
  // invariant that pulls observe globally non-decreasing timestamps: a
  // sample at or before the cursor would already have been skipped by
  // series_since, so completed aggregate buckets never reopen.
  std::size_t sync_from(const TimeSeriesStore& hot);

  // Advances every level's compaction cursor to the newest bucket
  // boundary the synced data has fully passed, folds the raw samples in
  // between into aggregate buckets, purges raw data past the downsample
  // horizon (aligned down to the coarsest bucket boundary), and applies
  // per-level retention.
  void compact(common::TimestampMs now);

  std::vector<SeriesView> select(const std::vector<LabelMatcher>& matchers,
                                 TimestampMs min_t,
                                 TimestampMs max_t) const override;

  std::vector<int64_t> agg_resolutions() const override;
  std::optional<std::vector<AggSeriesView>> select_agg(
      int64_t resolution_ms, const std::vector<LabelMatcher>& matchers,
      TimestampMs min_end, TimestampMs max_end) const override;

  // Raw shard versions followed by one counter per ladder level, so
  // query-result cache entries over this store invalidate when either
  // side mutates.
  std::vector<uint64_t> version_signature() const override;

  StorageStats stats() const;
  StorageStats raw_stats() const { return raw_.stats(); }
  // Aggregate-ladder footprint (num_samples counts bucket rows).
  StorageStats downsampled_stats() const;
  LongTermSelectStats select_stats() const;

 private:
  struct AggLevel {
    AggLevelConfig config;
    // Keyed by the full label set (ordered, so every read is
    // deterministic), like the merged select() output.
    std::map<Labels, AggChunkedSeries> series;
    // Buckets with end <= cursor_ms are complete and immutable.
    TimestampMs cursor_ms = INT64_MIN;
    // Buckets with end <= purged_end_ms may have been dropped by
    // retention; coverage below this line cannot be promised.
    TimestampMs purged_end_ms = INT64_MIN;
    std::size_t num_buckets = 0;
    uint64_t version = 0;  // bumped on every mutation of this level
  };

  // Largest boundary <= t aligned to every level's resolution.
  TimestampMs align_down_all_levels(TimestampMs t) const;

  LongTermConfig config_;
  mutable std::mutex mu_;
  TimeSeriesStore raw_;
  std::vector<AggLevel> levels_;  // ascending resolution
  TimestampMs sync_cursor_ = -1;
  TimestampMs raw_purged_end_ = INT64_MIN;  // raw samples with t <= this are gone
  mutable LongTermSelectStats select_stats_;  // guarded by mu_
};

}  // namespace ceems::tsdb
