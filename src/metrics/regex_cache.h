// Process-wide cache of compiled PromQL label regexes. Selector matching
// (LabelMatcher with =~ / !~) historically compiled a std::regex on every
// matches() call — once per series per select(), which dominated selector
// cost for regex-heavy queries. PromQL regexes come from a small set of
// query strings, so a bounded LRU keyed on the raw pattern makes the
// compile a once-per-pattern event.
//
// Patterns are compiled fully anchored ("^(?:pattern)$", ECMAScript), the
// PromQL anchoring rule. Compilation errors (std::regex_error) propagate to
// the caller exactly as the previous inline compile did.
#pragma once

#include <memory>
#include <regex>
#include <string>

namespace ceems::metrics {

// Returns the compiled, anchored regex for `pattern`, from cache when
// possible. The returned pointer is immutable and safe to use after later
// cache evictions. Thread-safe.
std::shared_ptr<const std::regex> compiled_anchored_regex(
    const std::string& pattern);

struct RegexCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;     // compile happened (entry inserted)
  uint64_t evictions = 0;  // LRU capacity evictions
};

RegexCacheStats regex_cache_stats();

}  // namespace ceems::metrics
