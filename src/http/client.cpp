#include "http/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/strutil.h"

namespace ceems::http {

namespace {

bool send_all(int fd, std::string_view data, int timeout_ms) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Client::Client(ClientConfig config) : config_(std::move(config)) {}

Client::~Client() {
  if (cached_fd_ >= 0) ::close(cached_fd_);
}

Client::Client(Client&& other) noexcept
    : config_(std::move(other.config_)),
      cached_fd_(other.cached_fd_),
      cached_endpoint_(std::move(other.cached_endpoint_)),
      jitter_rng_(other.jitter_rng_),
      requests_(other.requests_.load()),
      retries_(other.retries_.load()),
      faults_injected_(other.faults_injected_.load()) {
  other.cached_fd_ = -1;
}

ClientStats Client::stats() const {
  ClientStats out;
  out.requests = requests_.load();
  out.retries = retries_.load();
  out.faults_injected = faults_injected_.load();
  return out;
}

std::optional<Client::ParsedUrl> Client::parse_url(const std::string& url) {
  std::string_view rest = url;
  if (!common::starts_with(rest, "http://")) return std::nullopt;
  rest.remove_prefix(7);
  std::size_t slash = rest.find('/');
  std::string_view authority =
      slash == std::string_view::npos ? rest : rest.substr(0, slash);
  ParsedUrl parsed;
  parsed.target = slash == std::string_view::npos
                      ? "/"
                      : std::string(rest.substr(slash));
  std::size_t colon = authority.rfind(':');
  if (colon == std::string_view::npos) {
    parsed.host = std::string(authority);
    parsed.port = 80;
  } else {
    parsed.host = std::string(authority.substr(0, colon));
    auto port = common::parse_int64(authority.substr(colon + 1));
    if (!port || *port <= 0 || *port > 65535) return std::nullopt;
    parsed.port = static_cast<uint16_t>(*port);
  }
  if (parsed.host == "localhost") parsed.host = "127.0.0.1";
  return parsed;
}

int Client::connect_to(const ParsedUrl& url, std::string& error) {
  std::string endpoint = url.host + ":" + std::to_string(url.port);
  if (cached_fd_ >= 0 && cached_endpoint_ == endpoint) {
    int fd = cached_fd_;
    cached_fd_ = -1;
    return fd;
  }
  if (cached_fd_ >= 0) {
    ::close(cached_fd_);
    cached_fd_ = -1;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = "socket() failed";
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(url.port);
  if (::inet_pton(AF_INET, url.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    error = "unresolvable host " + url.host + " (only IPv4 literals supported)";
    return -1;
  }
  // Non-blocking connect with timeout.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    error = "connect failed: " + std::string(std::strerror(errno));
    return -1;
  }
  if (rc < 0) {
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, config_.connect_timeout_ms) <= 0) {
      ::close(fd);
      error = "connect timeout to " + endpoint;
      return -1;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      ::close(fd);
      error = "connect failed: " + std::string(std::strerror(so_error));
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  cached_endpoint_ = endpoint;
  return fd;
}

FetchResult Client::get(const std::string& url, const HeaderMap& headers) {
  return request("GET", url, "", headers);
}

FetchResult Client::post(const std::string& url, const std::string& body,
                         const std::string& content_type,
                         const HeaderMap& headers) {
  HeaderMap all = headers;
  all["Content-Type"] = content_type;
  return request("POST", url, body, all);
}

FetchResult Client::request(const std::string& method, const std::string& url,
                            const std::string& body, const HeaderMap& headers) {
  ++requests_;
  const RetryConfig& retry = config_.retry;
  FetchResult result;
  int64_t backoff_spent_ms = 0;
  double backoff_ms = retry.initial_backoff_ms;
  for (int attempt = 0;; ++attempt) {
    result = request_once(method, url, body, headers);
    result.attempts = attempt + 1;
    bool retryable =
        !result.ok ||
        (retry.retry_on_status &&
         RetryConfig::retryable_status(result.response.status));
    if (!retryable || attempt >= retry.max_retries) return result;

    // Exponential backoff with jitter under a cumulative budget. With no
    // clock the retry is immediate — the deterministic pipeline mode.
    int64_t delay_ms = 0;
    if (retry.initial_backoff_ms > 0) {
      double jittered =
          backoff_ms *
          (1.0 + retry.jitter * (2.0 * jitter_rng_.next_double() - 1.0));
      delay_ms = std::max<int64_t>(0, static_cast<int64_t>(jittered));
      if (backoff_spent_ms + delay_ms > retry.retry_budget_ms) return result;
      backoff_spent_ms += delay_ms;
      backoff_ms *= retry.backoff_multiplier;
    }
    ++retries_;
    if (config_.clock && delay_ms > 0) {
      if (!config_.clock->sleep_for(delay_ms)) return result;  // interrupted
    }
  }
}

FetchResult Client::request_once(const std::string& method,
                                 const std::string& url,
                                 const std::string& body,
                                 const HeaderMap& headers) {
  FetchResult result;

  // Chaos injection: the hook decides, this function implements. Faults
  // that prevent the exchange return before any socket work.
  faults::FaultDecision fault;
  if (config_.fault_hook) {
    fault = config_.fault_hook("http.client", url);
    if (fault) ++faults_injected_;
    switch (fault.kind) {
      case faults::FaultKind::kConnectTimeout:
        result.error = "connect timeout (injected)";
        return result;
      case faults::FaultKind::kIoTimeout:
        result.error = "response header timeout (injected)";
        return result;
      case faults::FaultKind::kUnavailable:
        result.error = "connect failed: connection refused (injected)";
        return result;
      case faults::FaultKind::kHttpStatus:
        result.ok = true;
        result.response.status = fault.http_status;
        result.response.body = "injected fault";
        return result;
      case faults::FaultKind::kSlowResponse:
        // The response would arrive after delay_ms; past the IO timeout it
        // is indistinguishable from a hang.
        if (fault.delay_ms >= config_.io_timeout_ms) {
          result.error = "response body timeout (injected slow response)";
          return result;
        }
        break;  // arrives late but in time: proceed normally
      case faults::FaultKind::kTruncateBody:
        break;  // exchange happens, body is cut below
      default:
        break;
    }
  }

  auto parsed = parse_url(url);
  if (!parsed) {
    result.error = "bad url: " + url;
    return result;
  }
  int fd = connect_to(*parsed, result.error);
  if (fd < 0) return result;

  std::string wire = method + " " + parsed->target + " HTTP/1.1\r\n";
  wire += "Host: " + parsed->host + ":" + std::to_string(parsed->port) + "\r\n";
  for (const auto& [name, value] : headers) {
    wire += name + ": " + value + "\r\n";
  }
  if (config_.basic_auth.enabled() && headers.find("Authorization") == headers.end()) {
    wire += "Authorization: " +
            basic_auth_header(config_.basic_auth.username,
                              config_.basic_auth.password) +
            "\r\n";
  }
  wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  wire += "Connection: keep-alive\r\n\r\n";
  wire += body;

  if (!send_all(fd, wire, config_.io_timeout_ms)) {
    ::close(fd);
    result.error = "send failed";
    return result;
  }

  // Read headers.
  std::string buffer;
  std::size_t header_end;
  for (;;) {
    header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, config_.io_timeout_ms) <= 0) {
      ::close(fd);
      result.error = "response header timeout";
      return result;
    }
    char chunk[16384];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      ::close(fd);
      result.error = "connection closed reading headers";
      return result;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }

  std::string_view head(buffer.data(), header_end);
  auto lines = common::split(head, '\n');
  auto status_fields = common::split_fields(lines.empty() ? "" : lines[0]);
  if (status_fields.size() < 2) {
    ::close(fd);
    result.error = "malformed status line";
    return result;
  }
  auto status = common::parse_int64(status_fields[1]);
  if (!status) {
    ::close(fd);
    result.error = "malformed status code";
    return result;
  }
  result.response.status = static_cast<int>(*status);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = common::trim(lines[i]);
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    result.response.headers[std::string(common::trim(line.substr(0, colon)))] =
        std::string(common::trim(line.substr(colon + 1)));
  }

  std::size_t body_start = header_end + 4;
  auto connection = result.response.headers.find("Connection");
  bool keep = connection == result.response.headers.end() ||
              common::to_lower(connection->second) != "close";

  auto cl = result.response.headers.find("Content-Length");
  if (cl == result.response.headers.end()) {
    if (keep) {
      // Keep-alive with no Content-Length: HTTP/1.1 requires a length (or
      // chunked coding, which we don't speak) for a body to exist, so this
      // is a bodiless response — NOT the same as a truncated one.
      result.response.body.clear();
      result.ok = true;
      cached_fd_ = fd;
      return result;
    }
    // Connection: close with no Content-Length: the body is everything
    // until EOF (HTTP/1.0-style streaming).
    for (;;) {
      pollfd pfd{fd, POLLIN, 0};
      if (::poll(&pfd, 1, config_.io_timeout_ms) <= 0) {
        ::close(fd);
        result.error = "response body timeout";
        return result;
      }
      char chunk[16384];
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0) {
        ::close(fd);
        result.error = "connection error reading body";
        return result;
      }
      if (n == 0) break;  // clean EOF terminates the body
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    result.response.body = buffer.substr(body_start);
    result.ok = true;
    return result;
  }

  auto parsed_len = common::parse_int64(cl->second);
  if (!parsed_len || *parsed_len < 0) {
    ::close(fd);
    result.error = "bad content-length";
    return result;
  }
  std::size_t body_len = static_cast<std::size_t>(*parsed_len);
  while (buffer.size() < body_start + body_len) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, config_.io_timeout_ms) <= 0) {
      ::close(fd);
      result.error = "response body timeout";
      return result;
    }
    char chunk[16384];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      // The server promised body_len bytes and the connection died first:
      // a truncated body, distinct from a legitimate empty/short body
      // (Content-Length: 0 lands here only if the headers promised more).
      ::close(fd);
      std::size_t got = buffer.size() - std::min(buffer.size(), body_start);
      result.error = "truncated body: got " + std::to_string(got) + " of " +
                     std::to_string(body_len) + " bytes";
      return result;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }

  if (fault.kind == faults::FaultKind::kTruncateBody) {
    // Simulates the peer closing mid-body: the truncated prefix arrived,
    // the Content-Length check (above, for real truncation) fails it.
    ::close(fd);
    std::size_t keep_bytes =
        static_cast<std::size_t>(static_cast<double>(body_len) *
                                 std::clamp(fault.keep_fraction, 0.0, 1.0));
    result.error = "truncated body: got " + std::to_string(keep_bytes) +
                   " of " + std::to_string(body_len) + " bytes (injected)";
    return result;
  }

  result.response.body = buffer.substr(body_start, body_len);
  result.ok = true;

  if (keep && buffer.size() == body_start + body_len) {
    cached_fd_ = fd;  // reuse for the next request to the same endpoint
  } else {
    ::close(fd);
  }
  return result;
}

}  // namespace ceems::http
