// Simulated Electricity Maps API (§II-A.c): multi-zone real-time carbon
// intensity with the free-tier constraint the paper works around — a rate
// limit on API requests. The provider enforces the limit and the caching
// wrapper shows how CEEMS stays under it while still exporting a fresh
// factor every scrape.
#pragma once

#include <map>
#include <mutex>

#include "emissions/provider.h"

namespace ceems::emissions {

struct EMapsConfig {
  // Free-tier style quota: requests per rolling hour (0 = unlimited).
  int max_requests_per_hour = 60;
};

class ElectricityMapsProvider final : public Provider {
 public:
  explicit ElectricityMapsProvider(common::ClockPtr clock,
                                   EMapsConfig config = {});

  std::string name() const override { return "emaps"; }
  std::optional<EmissionFactor> factor(const std::string& zone,
                                       common::TimestampMs t_ms) override;

  // Continuous per-zone model, exposed for tests.
  static std::optional<double> model_gco2_per_kwh(const std::string& zone,
                                                  common::TimestampMs t_ms);
  uint64_t requests_made() const;
  uint64_t requests_rejected() const;

 private:
  common::ClockPtr clock_;
  EMapsConfig config_;
  mutable std::mutex mu_;
  std::vector<common::TimestampMs> request_log_;  // rolling hour window
  uint64_t requests_made_ = 0;
  uint64_t requests_rejected_ = 0;
};

// Caching wrapper: refreshes from the wrapped provider at most every
// `ttl_ms` per zone and serves the cached factor in between — the pattern
// that keeps CEEMS under the free-tier quota.
class CachingProvider final : public Provider {
 public:
  CachingProvider(ProviderPtr inner, int64_t ttl_ms)
      : inner_(std::move(inner)), ttl_ms_(ttl_ms) {}

  std::string name() const override { return inner_->name(); }
  std::optional<EmissionFactor> factor(const std::string& zone,
                                       common::TimestampMs t_ms) override;

  uint64_t cache_hits() const { return cache_hits_; }

 private:
  struct Entry {
    EmissionFactor factor;
    common::TimestampMs fetched_ms = 0;
  };
  ProviderPtr inner_;
  int64_t ttl_ms_;
  std::mutex mu_;
  std::map<std::string, Entry> cache_;
  uint64_t cache_hits_ = 0;
};

}  // namespace ceems::emissions
