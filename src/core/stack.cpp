#include "core/stack.h"

#include "common/logging.h"

namespace ceems::core {

CeemsStack::CeemsStack(slurm::ClusterSim& sim, StackConfig config)
    : sim_(sim), config_(std::move(config)), clock_(sim.clock()) {
  hot_store_ = std::make_shared<tsdb::TimeSeriesStore>();
  if (config_.hot_durable_dir) {
    durable_ = std::make_unique<tsdb::DurableTsdb>(
        hot_store_, config_.hot_durable_dir, config_.hot_wal);
    last_open_ = durable_->open();
  }
  longterm_ = std::make_shared<tsdb::LongTermStore>(config_.longterm);

  faults::FaultHook fault_hook;
  if (config_.fault_plan) fault_hook = config_.fault_plan->hook();

  // --- exporters + scrape targets ---
  tsdb::ScrapeConfig scrape_config;
  scrape_config.interval_ms = config_.scrape_interval_ms;
  scrape_config.parallelism = 8;
  scrape_config.retries = config_.scrape_retries;
  scrape_config.fault_hook = fault_hook;
  scraper_ = std::make_unique<tsdb::ScrapeManager>(hot_store_, clock_,
                                                   scrape_config);

  std::size_t http_budget = config_.http_exporter_count;
  for (const auto& node : sim_.cluster().all_nodes()) {
    exporter::ExporterConfig exporter_config;
    exporter_config.http.basic_auth = config_.exporter_auth;
    exporter_config.http.worker_threads = 2;
    exporter_config.http.fault_hook = fault_hook;
    // Self-metrics read real procfs; at cluster scale that is pure noise,
    // keep it for the HTTP-exporter subset only.
    exporter_config.enable_self_metrics = http_budget > 0;
    auto exporter = make_ceems_exporter(node, clock_, exporter_config);
    if (fault_hook) node->fs()->set_fault_hook(fault_hook);

    tsdb::ScrapeTarget target;
    target.labels =
        metrics::Labels{{"hostname", node->hostname()},
                        {"nodegroup", nodegroup_of(node->spec())},
                        {"cluster", sim_.cluster().name()}};
    target.auth = config_.exporter_auth;
    if (http_budget > 0) {
      --http_budget;
      exporter->start();
      target.url = exporter->metrics_url();
      target.labels = target.labels.with("instance", exporter->metrics_url());
    } else {
      exporter::Exporter* raw = exporter.get();
      auto clock = clock_;
      target.local_fetch = [raw, clock] {
        return raw->render(clock->now_ms());
      };
      target.labels = target.labels.with("instance", node->hostname());
    }
    scraper_->add_target(std::move(target));
    exporters_.push_back(std::move(exporter));
  }

  // Dedicated emissions target (one per cluster): OWID static + simulated
  // real-time providers behind the free-tier-aware cache.
  {
    exporter::ExporterConfig exporter_config;
    exporter_config.enable_self_metrics = false;
    emissions_exporter_ =
        std::make_unique<exporter::Exporter>(exporter_config, clock_);
    auto emaps = std::make_shared<emissions::CachingProvider>(
        std::make_shared<emissions::ElectricityMapsProvider>(clock_),
        15 * common::kMillisPerMinute);
    std::vector<emissions::ProviderPtr> providers = {
        std::make_shared<emissions::RteProvider>(),
        emaps,
        std::make_shared<emissions::OwidProvider>(),
    };
    if (fault_hook) {
      for (auto& provider : providers) {
        provider = std::make_shared<emissions::FaultInjectedProvider>(
            provider, fault_hook);
      }
    }
    emissions_exporter_->add_collector(
        std::make_shared<exporter::EmissionsCollector>(providers,
                                                       config_.country_code));
    tsdb::ScrapeTarget target;
    target.labels = metrics::Labels{{"instance", "emissions"},
                                    {"cluster", sim_.cluster().name()}};
    exporter::Exporter* raw = emissions_exporter_.get();
    auto clock = clock_;
    target.local_fetch = [raw, clock] { return raw->render(clock->now_ms()); };
    scraper_->add_target(std::move(target));
  }

  // --- recording rules ---
  rules_ = std::make_unique<tsdb::RuleEngine>(hot_store_);
  for (auto& group :
       jean_zay_rule_groups(config_.rate_window, config_.emission_provider)) {
    rules_->add_group(std::move(group));
  }
  if (config_.include_equal_split_baseline) {
    for (auto& group : equal_split_baseline_rules(config_.rate_window)) {
      rules_->add_group(std::move(group));
    }
  }
  if (config_.include_ebpf_network_rules) {
    for (auto& group : ebpf_network_rules(config_.rate_window)) {
      rules_->add_group(std::move(group));
    }
  }
  if (config_.include_alert_rules) {
    for (auto& group : ceems_alert_rules()) {
      rules_->add_group(std::move(group));
    }
  }

  // --- Thanos-style query frontends over the long-term store ---
  for (std::size_t i = 0; i < std::max<std::size_t>(1, config_.query_backend_count); ++i) {
    QueryBackend backend;
    backend.server = std::make_unique<http::Server>(http::ServerConfig{});
    backend.api = std::make_unique<tsdb::PromApi>(longterm_, clock_);
    backend.api->attach(*backend.server);
    query_backends_.push_back(std::move(backend));
  }

  // --- API server + updater ---
  db_ = std::make_unique<reldb::Database>(config_.db_wal_path);
  apiserver::ApiServerConfig api_config;
  api_config.admin_users = config_.admin_users;
  api_server_ = std::make_unique<apiserver::ApiServer>(api_config, *db_,
                                                       clock_);
  std::vector<apiserver::AdapterPtr> adapters = {
      std::make_shared<apiserver::SlurmAdapter>(sim_.dbd(),
                                                sim_.cluster().name())};
  apiserver::UpdaterConfig updater_config = config_.updater;
  updater_config.emission_provider = config_.emission_provider;
  updater_ = std::make_unique<apiserver::Updater>(
      *db_, longterm_, hot_store_, adapters, clock_, updater_config);

  // --- load balancer (backends filled at start_servers) ---
}

CeemsStack::~CeemsStack() { stop_servers(); }

void CeemsStack::pipeline_step() {
  common::TimestampMs now = clock_->now_ms();
  if (last_scrape_ms_ >= 0 && now - last_scrape_ms_ < config_.scrape_interval_ms)
    return;
  pipeline_step_forced();
}

void CeemsStack::pipeline_step_forced() {
  common::TimestampMs now = clock_->now_ms();
  last_scrape_ms_ = now;
  scraper_->scrape_all_once();
  rules_->evaluate_all(now);
  longterm_->sync_from(*hot_store_);
  longterm_->compact(now);
}

tsdb::DurableTsdb::OpenResult CeemsStack::recover_hot_store() {
  last_open_ = durable_->open();
  return last_open_;
}

apiserver::UpdateStats CeemsStack::update_api() {
  return updater_->update_once();
}

void CeemsStack::start_servers() {
  if (servers_running_) return;
  servers_running_ = true;
  for (auto& backend : query_backends_) backend.server->start();
  api_server_->start();

  std::vector<std::string> backend_urls = query_backend_urls();
  lb::LbConfig lb_config;
  lb_config.strategy = config_.lb_strategy;
  lb_config.admin_users = config_.admin_users;
  lb_config.api_server_url = api_server_->base_url();
  if (config_.fault_plan) lb_config.fault_hook = config_.fault_plan->hook();
  lb_ = std::make_unique<lb::LoadBalancer>(lb_config, backend_urls, clock_);
  lb_->set_api_server(api_server_.get());
  lb_->start();
}

void CeemsStack::stop_servers() {
  if (!servers_running_) return;
  servers_running_ = false;
  if (lb_) lb_->stop();
  api_server_->stop();
  for (auto& backend : query_backends_) backend.server->stop();
  for (auto& exporter : exporters_) exporter->stop();
}

std::vector<std::string> CeemsStack::query_backend_urls() const {
  std::vector<std::string> urls;
  for (const auto& backend : query_backends_) {
    urls.push_back(backend.server->base_url());
  }
  return urls;
}

}  // namespace ceems::core
