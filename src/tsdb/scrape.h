// Scrape manager: periodically GETs /metrics from every target (the CEEMS
// exporters on compute nodes), parses the exposition text and ingests the
// samples — Prometheus' pull model. Each target gets the synthetic `up`,
// `scrape_duration_seconds` and `ceems_http_retries_total` series, so dead
// exporters and flaky transports are visible as data rather than as
// silence.
//
// Failure handling: a failed fetch is retried up to config.retries times
// within the sweep (HTTP targets additionally get the client's exponential
// backoff); when every attempt fails, `up` goes to 0 and a staleness
// marker (metrics::stale_marker()) is appended to every series the target
// exposed on its last good scrape, so queries stop seeing its stale
// samples immediately instead of for the full lookback window. Series
// that disappear from a healthy target's exposition between scrapes get
// the same marker — Prometheus' staleness semantics.
//
// Two driving modes:
//   * scrape_all_once(): synchronous parallel sweep — used by deterministic
//     tests and the simulated-time pipeline (scrape between sim steps);
//   * start()/stop(): background loop sleeping on the injected Clock.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/threadpool.h"
#include "faults/fault.h"
#include "http/client.h"
#include "tsdb/storage.h"

namespace ceems::tsdb {

struct ScrapeTarget {
  std::string url;        // http://host:port/metrics
  Labels labels;          // attached to every sample (instance, hostname...)
  http::BasicAuthConfig auth;
  // Local transport: when set, the scrape calls this instead of HTTP and
  // parses the returned exposition text. Used to drive 1400 simulated
  // exporters in one process (E4) without 1400 listening sockets; the
  // parse/ingest path is byte-identical to the HTTP path. An empty
  // returned string is treated as a failed scrape.
  std::function<std::string()> local_fetch;
};

struct ScrapeConfig {
  int64_t interval_ms = 30 * common::kMillisPerSecond;
  int parallelism = 8;
  int timeout_ms = 5000;
  // Honor timestamps in the exposition text; otherwise stamp at scrape time.
  bool honor_timestamps = false;
  // Extra fetch attempts per target per sweep after a failure. HTTP
  // targets retry inside http::Client (exponential backoff under a retry
  // budget); local-transport targets re-evaluate the fault path against
  // the already-fetched body, so exporter-side state advances exactly once
  // per sweep regardless of retries.
  int retries = 1;
  // Append staleness markers for vanished/failed series (see file header).
  bool emit_stale_markers = true;
  // Chaos injection on the fetch path (site "scrape.target", key =
  // instance label or url). Empty in production.
  faults::FaultHook fault_hook;
};

struct ScrapeStats {
  uint64_t scrapes_total = 0;
  uint64_t scrapes_failed = 0;
  uint64_t samples_ingested = 0;
  uint64_t retries = 0;
  uint64_t stale_markers = 0;
};

class ScrapeManager {
 public:
  ScrapeManager(StorePtr store, common::ClockPtr clock,
                ScrapeConfig config = {});
  ~ScrapeManager();

  void add_target(ScrapeTarget target);
  std::size_t target_count() const;

  // One synchronous sweep over all targets; returns per-sweep stats.
  ScrapeStats scrape_all_once();

  // Background loop at config.interval_ms.
  void start();
  void stop();

  ScrapeStats stats() const;

 private:
  struct TargetState {
    ScrapeTarget target;
    std::unique_ptr<http::Client> client;
    // Fault-stream key: the instance label when present, else the url.
    std::string fault_key;
    // Interned once at registration: the per-sweep hot loop merges target
    // labels into each sample by symbol id, and the synthetic up /
    // scrape_duration_seconds / ceems_http_retries_total label sets are
    // reused with their fingerprints precomputed.
    std::vector<metrics::InternedLabels::SymbolPair> target_syms;
    metrics::InternedLabels up_labels;
    metrics::InternedLabels duration_labels;
    metrics::InternedLabels retries_labels;
    // Series the target exposed on its last successful scrape, keyed by
    // fingerprint — the diff basis for staleness markers. Touched only by
    // the (single) sweep thread scraping this target.
    std::unordered_map<uint64_t, metrics::InternedLabels> live_series;
    // Scrape-level retry attempts (local transport); HTTP transport
    // retries are counted inside http::Client and added on export.
    uint64_t local_retries = 0;
    uint64_t consecutive_failures = 0;
  };

  struct TargetSweep {
    int64_t ingested = -1;  // samples ingested, or -1 on failure
    uint64_t retries = 0;
    uint64_t stale_markers = 0;
  };

  // Scrapes one target, applying retries and staleness markers.
  TargetSweep scrape_target(TargetState& state, common::TimestampMs now);

  StorePtr store_;
  common::ClockPtr clock_;
  ScrapeConfig config_;

  mutable std::mutex targets_mu_;
  std::vector<std::unique_ptr<TargetState>> targets_;

  std::atomic<uint64_t> scrapes_total_{0};
  std::atomic<uint64_t> scrapes_failed_{0};
  std::atomic<uint64_t> samples_ingested_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> stale_markers_{0};

  std::atomic<bool> running_{false};
  std::thread loop_thread_;
};

}  // namespace ceems::tsdb
