// FaultPlan — the deterministic chaos engine behind FaultHook.
//
// A plan is seeded with one uint64 and configured with per-site fault
// rates. Every (site, key) pair owns an independent decision stream:
// decision n for a pair is a pure function of (seed, site, key, n), so a
// chaos run replays bit-identically from its seed no matter how scrape
// threads interleave — streams only depend on the per-key call order,
// which the callers (one scrape per target per sweep, one provider call
// per factor lookup) keep sequential.
//
// Flapping targets: a per-key draw marks some keys as flappers; a flapper
// goes fully dark for `flap_down` out of every `flap_period` decisions
// (or, when a clock is attached, for `flap_down_ms` out of every
// `flap_period_ms` of simulated time), reproducing the
// up/down/up exporter behaviour operators see on real BMC-backed nodes.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "faults/fault.h"

namespace ceems::faults {

// Per-site fault probabilities (each decision draws once; the listed
// faults partition the probability space in declaration order).
struct SiteFaults {
  double connect_timeout = 0;
  double io_timeout = 0;
  double http_5xx = 0;
  double http_429 = 0;
  double slow = 0;
  double truncate = 0;
  double unavailable = 0;
  double read_error = 0;
  // Fraction of keys that flap (square-wave outage) instead of failing
  // independently per call.
  double flap = 0;

  int slow_delay_ms = 10000;
  int flap_period = 16;  // decisions per flap cycle (no clock attached)
  int flap_down = 4;     // dark decisions per cycle
  int64_t flap_period_ms = 10 * common::kMillisPerMinute;  // with a clock
  int64_t flap_down_ms = 3 * common::kMillisPerMinute;

  double total() const {
    return connect_timeout + io_timeout + http_5xx + http_429 + slow +
           truncate + unavailable + read_error;
  }
};

class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed = 0);

  // Attaches a clock: flap windows are then driven by (simulated) time
  // instead of per-key call counts.
  void set_clock(common::ClockPtr clock);

  // Enables faults at a site. Sites not configured never fault, so an
  // unconfigured ("no-fault") plan is behaviourally inert.
  void configure(const std::string& site, SiteFaults faults);

  // Removes a site's fault config: subsequent decisions short-circuit to
  // "no fault" exactly like a never-configured site. Decision streams are
  // kept, so a later configure() resumes them deterministically. The soak
  // runner uses configure()/clear() pairs to turn storms on and off at
  // scenario boundaries.
  void clear(const std::string& site);

  // One decision for (site, key); advances that pair's stream.
  FaultDecision decide(std::string_view site, std::string_view key);

  // Adapter for installation on injection sites. The plan must outlive
  // every site the hook is installed on.
  FaultHook hook() {
    return [this](std::string_view site, std::string_view key) {
      return decide(site, key);
    };
  }

  uint64_t seed() const { return seed_; }

  struct Stats {
    uint64_t decisions = 0;
    uint64_t faults = 0;
    std::map<std::string, uint64_t> by_kind;  // fault_kind_name -> count
  };
  Stats stats() const;

 private:
  struct Stream {
    uint64_t counter = 0;
    bool flapper = false;
  };

  const uint64_t seed_;
  common::ClockPtr clock_;

  mutable std::mutex mu_;
  std::map<std::string, SiteFaults, std::less<>> sites_;
  std::map<std::string, Stream> streams_;  // "site\x1fkey" -> stream
  Stats stats_;
};

}  // namespace ceems::faults
