#include "tsdb/scrape.h"

#include "common/logging.h"
#include "metrics/text_format.h"

namespace ceems::tsdb {

ScrapeManager::ScrapeManager(StorePtr store, common::ClockPtr clock,
                             ScrapeConfig config)
    : store_(std::move(store)),
      clock_(std::move(clock)),
      config_(config) {}

ScrapeManager::~ScrapeManager() { stop(); }

void ScrapeManager::add_target(ScrapeTarget target) {
  auto state = std::make_unique<TargetState>();
  http::ClientConfig client_config;
  client_config.io_timeout_ms = config_.timeout_ms;
  client_config.connect_timeout_ms = config_.timeout_ms;
  client_config.basic_auth = target.auth;
  state->target = std::move(target);
  state->client = std::make_unique<http::Client>(client_config);
  auto& table = metrics::SymbolTable::global();
  for (const auto& [name, value] : state->target.labels.pairs()) {
    state->target_syms.emplace_back(table.intern(name), table.intern(value));
  }
  state->up_labels = state->target.labels.with_name("up");
  state->duration_labels =
      state->target.labels.with_name("scrape_duration_seconds");
  std::lock_guard lock(targets_mu_);
  targets_.push_back(std::move(state));
}

std::size_t ScrapeManager::target_count() const {
  std::lock_guard lock(targets_mu_);
  return targets_.size();
}

int64_t ScrapeManager::scrape_target(TargetState& state,
                                     common::TimestampMs now) {
  auto started = std::chrono::steady_clock::now();
  http::FetchResult result;
  if (state.target.local_fetch) {
    result.response.body = state.target.local_fetch();
    result.response.status = 200;
    result.ok = !result.response.body.empty();
    if (!result.ok) result.error = "local fetch returned no data";
  } else {
    result = state.client->get(state.target.url);
  }
  double duration_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  if (!result.ok || result.response.status != 200) {
    store_->append(state.up_labels, now, 0);
    store_->append(state.duration_labels, now, duration_sec);
    return -1;
  }

  int64_t count = 0;
  try {
    auto parsed = metrics::parse_exposition(result.response.body);
    // Batch the whole scrape through append_all: samples are grouped by
    // storage shard so each per-shard lock is taken once per sweep rather
    // than once per sample. Samples arrive interned from the parser and
    // target labels were interned at registration, so the merge below is
    // pure symbol-id work — no label strings are copied per sample.
    std::vector<metrics::Sample> batch;
    batch.reserve(parsed.samples.size());
    for (auto& sample : parsed.samples) {
      metrics::InternedLabels labels = std::move(sample.labels);
      for (const auto& [name_sym, value_sym] : state.target_syms) {
        labels = labels.with_symbols(name_sym, value_sym);
      }
      common::TimestampMs t =
          config_.honor_timestamps && sample.timestamp_ms != 0
              ? sample.timestamp_ms
              : now;
      batch.push_back({std::move(labels), t, sample.value});
    }
    count = static_cast<int64_t>(store_->append_all(batch));
  } catch (const metrics::ExpositionParseError& e) {
    CEEMS_LOG_WARN("scrape") << state.target.url << ": " << e.what();
    store_->append(state.up_labels, now, 0);
    store_->append(state.duration_labels, now, duration_sec);
    return -1;
  }
  store_->append(state.up_labels, now, 1);
  store_->append(state.duration_labels, now, duration_sec);
  return count;
}

ScrapeStats ScrapeManager::scrape_all_once() {
  std::vector<TargetState*> snapshot;
  {
    std::lock_guard lock(targets_mu_);
    snapshot.reserve(targets_.size());
    for (auto& state : targets_) snapshot.push_back(state.get());
  }
  common::TimestampMs now = clock_->now_ms();

  ScrapeStats sweep;
  std::mutex sweep_mu;
  common::ThreadPool pool(
      std::min<std::size_t>(static_cast<std::size_t>(config_.parallelism),
                            std::max<std::size_t>(1, snapshot.size())),
      "scrape");
  for (TargetState* state : snapshot) {
    pool.submit([&, state] {
      int64_t ingested = scrape_target(*state, now);
      std::lock_guard lock(sweep_mu);
      ++sweep.scrapes_total;
      if (ingested < 0) {
        ++sweep.scrapes_failed;
      } else {
        sweep.samples_ingested += static_cast<uint64_t>(ingested);
      }
    });
  }
  pool.wait_idle();
  pool.shutdown();

  scrapes_total_ += sweep.scrapes_total;
  scrapes_failed_ += sweep.scrapes_failed;
  samples_ingested_ += sweep.samples_ingested;
  return sweep;
}

void ScrapeManager::start() {
  if (running_.exchange(true)) return;
  loop_thread_ = std::thread([this] {
    while (running_.load()) {
      common::TimestampMs next = clock_->now_ms() + config_.interval_ms;
      scrape_all_once();
      if (!clock_->sleep_until(next)) return;
      if (!running_.load()) return;
    }
  });
}

void ScrapeManager::stop() {
  if (!running_.exchange(false)) return;
  clock_->interrupt();
  if (loop_thread_.joinable()) loop_thread_.join();
}

ScrapeStats ScrapeManager::stats() const {
  ScrapeStats out;
  out.scrapes_total = scrapes_total_.load();
  out.scrapes_failed = scrapes_failed_.load();
  out.samples_ingested = samples_ingested_.load();
  return out;
}

}  // namespace ceems::tsdb
