# Empty dependencies file for ceems_simfs.
# This may be replaced when dependencies are built.
