# Empty compiler generated dependencies file for scrape_test.
# This may be replaced when dependencies are built.
