// Operator analytics (§III-B): "This enables the operators to perform data
// analysis on the job metrics data to optimize the cluster usage, identify
// users and/or projects that are using the cluster resources
// inefficiently". The efficiency report flags finished units whose average
// CPU or GPU utilization fell below a threshold, quantifies the wasted
// allocation, and ranks users/projects by total waste.
#pragma once

#include <string>
#include <vector>

#include "apiserver/schema.h"
#include "reldb/database.h"

namespace ceems::apiserver {

struct ReportThresholds {
  double low_cpu_usage = 0.3;   // fraction of allocated CPUs
  double low_gpu_usage = 0.3;   // fraction of bound GPUs
  int64_t min_elapsed_ms = 10 * 60 * 1000;  // ignore blips
  std::size_t max_findings = 50;
};

struct InefficientUnit {
  Unit unit;
  // Allocated-but-unused CPU time, in cpu-hours.
  double wasted_cpu_hours = 0;
  // Energy attributed to the unit, scaled by the unused fraction — a rough
  // "reclaimable" figure for the operator.
  double wasted_energy_joules = 0;
};

struct WasteByOwner {
  std::string owner;  // user or project
  std::size_t flagged_units = 0;
  double wasted_cpu_hours = 0;
  double wasted_energy_joules = 0;
};

struct EfficiencyReport {
  std::vector<InefficientUnit> low_cpu_units;  // worst first
  std::vector<InefficientUnit> low_gpu_units;  // worst first
  std::vector<WasteByOwner> by_user;           // worst first
  std::vector<WasteByOwner> by_project;        // worst first
  double total_wasted_cpu_hours = 0;
};

EfficiencyReport build_efficiency_report(const reldb::Database& db,
                                         const ReportThresholds& thresholds = {});

// Text rendering for operator terminals / the jean_zay example.
std::string render_efficiency_report(const EfficiencyReport& report,
                                     std::size_t top_n = 10);

// JSON rendering for the /api/v1/reports/efficiency endpoint.
common::Json efficiency_report_to_json(const EfficiencyReport& report,
                                       std::size_t top_n = 20);

}  // namespace ceems::apiserver
