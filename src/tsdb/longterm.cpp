#include "tsdb/longterm.h"

#include <algorithm>
#include <map>

namespace ceems::tsdb {

LongTermStore::LongTermStore(LongTermConfig config) : config_(config) {}

std::size_t LongTermStore::sync_from(const TimeSeriesStore& hot) {
  std::lock_guard lock(mu_);
  std::size_t copied = 0;
  for (const auto& series : hot.series_since(sync_cursor_ + 1)) {
    for (const auto& sample : series.samples) {
      if (raw_.append(series.labels, sample.t, sample.v)) ++copied;
    }
  }
  if (auto max_t = raw_.max_time()) sync_cursor_ = *max_t;
  return copied;
}

void LongTermStore::compact(common::TimestampMs now) {
  std::lock_guard lock(mu_);
  TimestampMs cutoff = now - config_.downsample_after_ms;
  if (cutoff > downsample_cursor_) {
    // Bucketize everything in [downsample_cursor_, cutoff) into the coarse
    // resolution, keeping the last sample per bucket.
    for (const auto& view : raw_.select({}, downsample_cursor_, cutoff - 1)) {
      std::map<int64_t, SamplePoint> buckets;
      for (const auto& sample : view.samples()) {
        buckets[sample.t / config_.resolution_ms] = sample;
      }
      for (const auto& [bucket, sample] : buckets) {
        downsampled_.append(view.labels, sample.t, sample.v);
      }
    }
    raw_.purge_before(cutoff);
    downsample_cursor_ = cutoff;
  }
  if (config_.retention_ms > 0) {
    downsampled_.purge_before(now - config_.retention_ms);
  }
}

std::vector<SeriesView> LongTermStore::select(
    const std::vector<LabelMatcher>& matchers, TimestampMs min_t,
    TimestampMs max_t) const {
  std::lock_guard lock(mu_);
  std::vector<SeriesView> coarse = downsampled_.select(matchers, min_t, max_t);
  std::vector<SeriesView> fine = raw_.select(matchers, min_t, max_t);

  // Merge per label set: downsampled history followed by the raw tail.
  // Keyed by the full label set, not its fingerprint — two distinct label
  // sets whose fingerprints collide must stay distinct series. Series
  // present on only one side keep their chunk-backed views; only series
  // straddling the downsample horizon are materialised to splice.
  std::map<Labels, SeriesView> merged;
  for (auto& view : coarse) {
    Labels key = view.labels;
    merged.emplace(std::move(key), std::move(view));
  }
  for (auto& view : fine) {
    auto it = merged.find(view.labels);
    if (it == merged.end()) {
      Labels key = view.labels;
      merged.emplace(std::move(key), std::move(view));
      continue;
    }
    std::vector<SamplePoint> spliced = it->second.samples();
    for (const auto& sample : view.samples()) {
      if (spliced.empty() || sample.t > spliced.back().t) {
        spliced.push_back(sample);
      }
    }
    it->second = SeriesView::owned(std::move(view.labels), std::move(spliced));
  }
  std::vector<SeriesView> out;
  out.reserve(merged.size());
  // Map iteration is ordered by labels, so output stays deterministic.
  for (auto& [key, view] : merged) out.push_back(std::move(view));
  return out;
}

std::vector<uint64_t> LongTermStore::version_signature() const {
  std::vector<uint64_t> out = raw_.version_signature();
  std::vector<uint64_t> coarse = downsampled_.version_signature();
  out.insert(out.end(), coarse.begin(), coarse.end());
  return out;
}

StorageStats LongTermStore::stats() const {
  std::lock_guard lock(mu_);
  StorageStats raw = raw_.stats();
  StorageStats coarse = downsampled_.stats();
  StorageStats out;
  out.num_series = std::max(raw.num_series, coarse.num_series);
  out.num_samples = raw.num_samples + coarse.num_samples;
  out.approx_bytes = raw.approx_bytes + coarse.approx_bytes;
  // The symbol table is process-global: take it once, don't sum it.
  out.symbol_bytes = raw.symbol_bytes;
  return out;
}

}  // namespace ceems::tsdb
