# Empty compiler generated dependencies file for ceems_node.
# This may be replaced when dependencies are built.
