// Typed values and schemas for the embedded relational store — the SQLite
// analogue justified in §II-D: the CEEMS API server has exactly one writer
// (its updater) and many readers, so a small embedded engine with snapshot
// reads is sufficient and dependency-free.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace ceems::reldb {

enum class ColumnType { kInt, kReal, kText };

struct Value {
  std::variant<std::monostate, int64_t, double, std::string> data;

  Value() = default;
  Value(int64_t v) : data(v) {}
  Value(int v) : data(static_cast<int64_t>(v)) {}
  Value(double v) : data(v) {}
  Value(const char* v) : data(std::string(v)) {}
  Value(std::string v) : data(std::move(v)) {}

  bool is_null() const { return std::holds_alternative<std::monostate>(data); }
  bool is_int() const { return std::holds_alternative<int64_t>(data); }
  bool is_real() const { return std::holds_alternative<double>(data); }
  bool is_text() const { return std::holds_alternative<std::string>(data); }

  int64_t as_int() const;
  // Numeric coercion: ints read as reals too (SQLite-style affinity).
  double as_real() const;
  const std::string& as_text() const;

  // Total order across types (null < numbers < text), numeric compared
  // numerically. Needed for ORDER BY and index keys.
  bool operator<(const Value& other) const;
  bool operator==(const Value& other) const;

  std::string to_string() const;
};

using Row = std::vector<Value>;

struct Column {
  std::string name;
  ColumnType type = ColumnType::kText;
};

struct Schema {
  std::vector<Column> columns;
  std::string primary_key;  // column name; must exist

  int column_index(const std::string& name) const;  // -1 if absent
};

}  // namespace ceems::reldb
