// WAL codec and recovery properties. The core invariants:
//
//   * round trip: every batch logged through the WAL replays into a
//     bit-identical store — raw f64 bits (NaN payloads, -0.0, denormals)
//     and timestamps survive exactly;
//   * torn tail: truncating or corrupting the log at ANY byte offset
//     loses at most the records from the damage point on — replay never
//     crashes, never applies a partial record, and repair leaves a log
//     that replays cleanly;
//   * checkpoint: snapshot + truncate is a consistent cut; recovery
//     restores snapshot ∪ post-checkpoint records.
#include "tsdb/wal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <thread>

#include "metrics/model.h"
#include "simfs/durable_dir.h"
#include "tsdb/storage.h"

namespace ceems::tsdb {
namespace {

using metrics::InternedLabels;
using metrics::Labels;
using metrics::SampleRef;

// Canonical bit-exact digest of a store's full contents: every series
// (sorted by label text) with every sample's timestamp and raw value
// bits. Two stores with equal digests are observably identical.
std::string digest(const TimeSeriesStore& store) {
  auto all = store.series_since(std::numeric_limits<TimestampMs>::min());
  std::vector<std::pair<std::string, const Series*>> sorted;
  sorted.reserve(all.size());
  for (const auto& series : all) {
    sorted.emplace_back(series.labels.to_string(), &series);
  }
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [key, series] : sorted) {
    out += key;
    out += '\n';
    for (const auto& sample : series->samples) {
      uint64_t bits = 0;
      std::memcpy(&bits, &sample.v, sizeof(bits));
      out += "  " + std::to_string(sample.t) + " " + std::to_string(bits) +
             "\n";
    }
  }
  return out;
}

// Replays `dir` into a fresh store and returns its digest.
std::string replay_digest(simfs::DurableDir& dir, uint64_t floor = 0,
                          bool repair = true) {
  TimeSeriesStore store;
  replay_wal(dir, floor, store, repair);
  return digest(store);
}

double value_from_bits(uint64_t bits) {
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Values whose bit patterns must survive the codec exactly.
double tricky_value(std::mt19937_64& rng) {
  switch (rng() % 8) {
    case 0: return metrics::stale_marker();
    case 1: return -0.0;
    case 2: return std::numeric_limits<double>::infinity();
    case 3: return -std::numeric_limits<double>::infinity();
    case 4: return std::numeric_limits<double>::denorm_min();
    case 5: return value_from_bits(rng());  // arbitrary bits (often NaN)
    default:
      return std::uniform_real_distribution<double>(-1e12, 1e12)(rng);
  }
}

// Frame offsets within one segment's durable bytes: byte offset where
// each complete record ends (ascending), starting after the header.
constexpr std::size_t kWalHeaderLen = 8 + 1 + 8;  // magic+version+seq

std::vector<std::size_t> record_ends(const std::string& bytes) {
  std::vector<std::size_t> ends;
  std::size_t offset = kWalHeaderLen;
  while (bytes.size() - offset >= 8) {
    uint32_t len = 0;
    std::memcpy(&len, bytes.data() + offset, 4);
    if (bytes.size() - offset - 8 < len) break;
    offset += 8 + len;
    ends.push_back(offset);
  }
  return ends;
}

TEST(WalCodec, RoundTripsRandomBatchesBitExactly) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    std::mt19937_64 rng(seed);
    auto dir = std::make_shared<simfs::SimDurableDir>();
    auto store = std::make_shared<TimeSeriesStore>();
    // Small segments so several seeds exercise rotation (the series
    // dictionary must survive it).
    WalOptions options;
    options.segment_bytes = 1u << 12;
    auto wal = std::make_shared<Wal>(dir, 1, options);
    store->set_wal(wal);

    // A pool of series with occasionally-weird label values.
    std::vector<InternedLabels> series;
    int num_series = 3 + static_cast<int>(rng() % 40);
    for (int s = 0; s < num_series; ++s) {
      Labels labels{{"uuid", std::to_string(s)},
                    {"host", "n" + std::to_string(rng() % 5)}};
      if (rng() % 4 == 0) {
        labels = labels.with("odd", std::string("a\nb\"c\\d\xc3\xa9 ") +
                                        std::to_string(rng() % 100));
      }
      series.push_back(InternedLabels(labels.with_name("m")));
    }

    int64_t t = -5000 + static_cast<int64_t>(rng() % 10000);
    int sweeps = 5 + static_cast<int>(rng() % 20);
    for (int sweep = 0; sweep < sweeps; ++sweep) {
      std::vector<SampleRef> batch;
      for (const auto& labels : series) {
        if (rng() % 8 == 0) continue;  // series flaps out of this sweep
        batch.push_back({&labels, t + static_cast<int64_t>(rng() % 100),
                         tricky_value(rng)});
      }
      store->append_refs(batch.data(), batch.size());
      if (rng() % 7 == 0) store->purge_before(t - 60000);
      if (rng() % 11 == 0) {
        store->delete_series({{"uuid", metrics::LabelMatcher::Op::kEq,
                               std::to_string(rng() % num_series)}});
      }
      t += 30000;
    }

    EXPECT_EQ(replay_digest(*dir), digest(*store)) << "seed " << seed;
    // Replay is idempotent on an undamaged log.
    EXPECT_EQ(replay_digest(*dir), replay_digest(*dir)) << "seed " << seed;
    store->set_wal(nullptr);
  }
}

// Builds a single-segment log with `records` small batches; returns the
// dir plus the digest after each record prefix (oracle[k] = digest with
// the first k records applied).
struct TornFixture {
  std::shared_ptr<simfs::SimDurableDir> dir;
  std::string segment;
  std::string bytes;                 // durable segment contents
  std::vector<std::size_t> ends;     // end offset of each record
  std::vector<std::string> oracle;   // oracle[k]: first k records applied
};

TornFixture make_torn_fixture(int records) {
  TornFixture fx;
  fx.dir = std::make_shared<simfs::SimDurableDir>();
  auto store = std::make_shared<TimeSeriesStore>();
  auto wal = std::make_shared<Wal>(fx.dir, 1, WalOptions{});
  store->set_wal(wal);
  std::vector<InternedLabels> series;
  for (int s = 0; s < 4; ++s) {
    series.push_back(
        InternedLabels(Labels{{"uuid", std::to_string(s)}}.with_name("m")));
  }
  for (int r = 0; r < records; ++r) {
    std::vector<SampleRef> batch;
    for (int s = 0; s <= r % 4; ++s) {
      batch.push_back({&series[s], r * 1000, r * 1.5 + s});
    }
    store->append_refs(batch.data(), batch.size());
  }
  store->set_wal(nullptr);

  fx.segment = Wal::segment_name(1);
  fx.bytes = *fx.dir->read(fx.segment);
  fx.ends = record_ends(fx.bytes);
  EXPECT_EQ(fx.ends.size(), static_cast<std::size_t>(records));

  // Oracle prefixes: replay a boundary-truncated copy for each k.
  for (int k = 0; k <= records; ++k) {
    simfs::SimDurableDir prefix_dir;
    std::size_t end = k == 0 ? kWalHeaderLen : fx.ends[k - 1];
    prefix_dir.append(fx.segment, std::string_view(fx.bytes).substr(0, end));
    prefix_dir.sync(fx.segment);
    fx.oracle.push_back(replay_digest(prefix_dir));
  }
  // Sanity: each record changes the store.
  for (std::size_t k = 1; k < fx.oracle.size(); ++k) {
    EXPECT_NE(fx.oracle[k - 1], fx.oracle[k]);
  }
  return fx;
}

TEST(WalTornTail, TruncationAtEveryByteOffsetReplaysCleanPrefix) {
  TornFixture fx = make_torn_fixture(5);
  for (std::size_t cut = 0; cut <= fx.bytes.size(); ++cut) {
    simfs::SimDurableDir dir;
    dir.append(fx.segment, std::string_view(fx.bytes).substr(0, cut));
    dir.sync(fx.segment);

    // Complete records surviving the cut.
    std::size_t k = 0;
    while (k < fx.ends.size() && fx.ends[k] <= cut) ++k;
    bool clean = cut == fx.bytes.size() ||
                 cut == (k == 0 ? kWalHeaderLen : fx.ends[k - 1]);
    // Cuts inside the header leave no valid segment at all.
    if (cut < kWalHeaderLen) clean = false;

    TimeSeriesStore store;
    auto result = replay_wal(dir, 0, store, true);
    EXPECT_EQ(digest(store), fx.oracle[k]) << "cut at " << cut;
    EXPECT_EQ(result.torn_tail, !clean) << "cut at " << cut;
    EXPECT_TRUE(result.error.empty()) << "cut at " << cut;
    EXPECT_EQ(result.records_applied, k) << "cut at " << cut;

    // After repair the log replays cleanly to the same state.
    TimeSeriesStore repaired;
    auto second = replay_wal(dir, 0, repaired, true);
    EXPECT_EQ(digest(repaired), fx.oracle[k]) << "cut at " << cut;
    EXPECT_FALSE(second.torn_tail) << "cut at " << cut;
  }
}

TEST(WalTornTail, CorruptionAtEveryByteOffsetOfTailRecordDiscardsIt) {
  TornFixture fx = make_torn_fixture(5);
  const std::size_t last_start = fx.ends[fx.ends.size() - 2];
  const std::size_t expect_records = fx.ends.size() - 1;
  for (std::size_t pos = last_start; pos < fx.bytes.size(); ++pos) {
    simfs::SimDurableDir dir;
    dir.append(fx.segment, fx.bytes);
    dir.sync(fx.segment);
    dir.corrupt_durable(fx.segment, pos,
                        static_cast<uint8_t>(fx.bytes[pos]) ^ 0x5A);

    TimeSeriesStore store;
    auto result = replay_wal(dir, 0, store, true);
    // Every earlier record applies; the damaged tail record never does,
    // not even partially.
    EXPECT_EQ(digest(store), fx.oracle[expect_records]) << "pos " << pos;
    EXPECT_TRUE(result.torn_tail) << "pos " << pos;
    EXPECT_TRUE(result.error.empty()) << "pos " << pos;
    EXPECT_EQ(result.records_applied, expect_records) << "pos " << pos;

    TimeSeriesStore repaired;
    auto second = replay_wal(dir, 0, repaired, true);
    EXPECT_EQ(digest(repaired), fx.oracle[expect_records]) << "pos " << pos;
    EXPECT_FALSE(second.torn_tail) << "pos " << pos;
  }
}

TEST(WalTornTail, InteriorSegmentCorruptionStopsWithError) {
  // Tiny segments force every record into its own segment; damaging a
  // non-final segment is real corruption, not a torn tail.
  auto dir = std::make_shared<simfs::SimDurableDir>();
  auto store = std::make_shared<TimeSeriesStore>();
  WalOptions options;
  options.segment_bytes = 1;  // rotate before every record
  auto wal = std::make_shared<Wal>(dir, 1, options);
  store->set_wal(wal);
  auto labels = InternedLabels(Labels{{"uuid", "1"}}.with_name("m"));
  for (int r = 0; r < 4; ++r) {
    SampleRef ref{&labels, r * 1000, static_cast<double>(r)};
    store->append_refs(&ref, 1);
  }
  store->set_wal(nullptr);

  // With segment_bytes=1 each record rotated into its own segment; the
  // first listed segment holds only a header. Damage the segment that
  // carries the second record — an interior segment, not the tail.
  auto segments = dir->list();
  ASSERT_GE(segments.size(), 4u);
  dir->corrupt_durable(segments[2], kWalHeaderLen + 8, 0xFF);

  TimeSeriesStore recovered;
  auto result = replay_wal(*dir, 0, recovered, true);
  EXPECT_FALSE(result.error.empty());
  EXPECT_FALSE(result.torn_tail);
  // Only the records before the damaged segment applied.
  EXPECT_EQ(result.records_applied, 1u);
  EXPECT_EQ(recovered.stats().num_samples, 1u);
}

TEST(WalCodec, DictionarySurvivesSegmentRotation) {
  auto dir = std::make_shared<simfs::SimDurableDir>();
  auto store = std::make_shared<TimeSeriesStore>();
  WalOptions options;
  options.segment_bytes = 64;  // rotate constantly
  auto wal = std::make_shared<Wal>(dir, 1, options);
  store->set_wal(wal);
  auto labels = InternedLabels(Labels{{"uuid", "1"}}.with_name("m"));
  for (int r = 0; r < 50; ++r) {
    SampleRef ref{&labels, r * 1000, static_cast<double>(r)};
    store->append_refs(&ref, 1);
  }
  ASSERT_GT(wal->stats().segments, 2u);
  // The definition was written once, in the first segment; every later
  // segment carries bare refs that must still resolve on replay.
  EXPECT_EQ(replay_digest(*dir), digest(*store));
  store->set_wal(nullptr);
}

TEST(WalGroupCommit, ConcurrentWritersCoalesceAndLoseNothing) {
  auto dir = std::make_shared<simfs::SimDurableDir>();
  auto store = std::make_shared<TimeSeriesStore>();
  auto wal = std::make_shared<Wal>(dir, 1, WalOptions{});
  store->set_wal(wal);

  constexpr int kThreads = 8;
  constexpr int kBatches = 40;
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      auto labels = InternedLabels(
          Labels{{"writer", std::to_string(w)}}.with_name("m"));
      for (int b = 0; b < kBatches; ++b) {
        SampleRef ref{&labels, b * 1000, w * 1000.0 + b};
        store->append_refs(&ref, 1);
      }
    });
  }
  for (auto& writer : writers) writer.join();

  auto stats = wal->stats();
  EXPECT_EQ(stats.batches, static_cast<uint64_t>(kThreads * kBatches));
  EXPECT_EQ(stats.samples, static_cast<uint64_t>(kThreads * kBatches));
  // Group commit: syncs may be far fewer than batches, never more than
  // one per record plus segment creation.
  EXPECT_LE(stats.groups, stats.records);
  EXPECT_EQ(store->stats().num_samples,
            static_cast<std::size_t>(kThreads * kBatches));

  EXPECT_EQ(replay_digest(*dir), digest(*store));
  store->set_wal(nullptr);
}

TEST(DurableTsdb, CheckpointTruncatesWalAndRecoveryRestoresUnion) {
  auto dir = std::make_shared<simfs::SimDurableDir>();
  auto store = std::make_shared<TimeSeriesStore>();
  DurableTsdb durable(store, dir);
  auto open = durable.open();
  EXPECT_EQ(open.snapshot_samples, 0u);

  auto labels = InternedLabels(Labels{{"uuid", "1"}}.with_name("m"));
  for (int r = 0; r < 10; ++r) {
    SampleRef ref{&labels, r * 1000, static_cast<double>(r)};
    store->append_refs(&ref, 1);
  }
  ASSERT_TRUE(durable.checkpoint());
  // The checkpoint truncated every pre-snapshot segment.
  std::size_t wal_records = 0;
  for (const auto& name : dir->list()) {
    if (Wal::parse_segment_name(name)) {
      wal_records += record_ends(*dir->read(name)).size();
    }
  }
  EXPECT_EQ(wal_records, 0u);

  for (int r = 10; r < 15; ++r) {
    SampleRef ref{&labels, r * 1000, static_cast<double>(r)};
    store->append_refs(&ref, 1);
  }
  std::string before = digest(*store);

  // Crash: unsynced state vanishes (group commit means there is none),
  // then recover in place on the same StorePtr.
  dir->crash();
  auto recovered = durable.open();
  EXPECT_EQ(recovered.snapshot_samples, 10u);
  EXPECT_EQ(recovered.replay.samples_appended, 5u);
  EXPECT_FALSE(recovered.replay.torn_tail);
  EXPECT_EQ(digest(*store), before);
}

TEST(DurableTsdb, RecoveryAfterCheckpointPlusTornTail) {
  auto dir = std::make_shared<simfs::SimDurableDir>();
  auto store = std::make_shared<TimeSeriesStore>();
  DurableTsdb durable(store, dir);
  durable.open();

  auto labels = InternedLabels(Labels{{"uuid", "1"}}.with_name("m"));
  for (int r = 0; r < 10; ++r) {
    SampleRef ref{&labels, r * 1000, static_cast<double>(r)};
    store->append_refs(&ref, 1);
  }
  ASSERT_TRUE(durable.checkpoint());
  for (int r = 10; r < 14; ++r) {
    SampleRef ref{&labels, r * 1000, static_cast<double>(r)};
    store->append_refs(&ref, 1);
  }

  // Tear the last record: chop 3 bytes off the live segment.
  std::string segment = Wal::segment_name(durable.wal().current_seq());
  std::size_t size = dir->read(segment)->size();
  dir->truncate_durable(segment, size - 3);

  auto recovered = durable.open();
  EXPECT_EQ(recovered.snapshot_samples, 10u);
  EXPECT_EQ(recovered.replay.samples_appended, 3u);
  EXPECT_TRUE(recovered.replay.torn_tail);
  EXPECT_EQ(store->stats().num_samples, 13u);

  // The repaired log + new generation keep working: append and re-open.
  SampleRef ref{&labels, 14000, 14.0};
  store->append_refs(&ref, 1);
  std::string before = digest(*store);
  auto again = durable.open();
  EXPECT_FALSE(again.replay.torn_tail);
  EXPECT_EQ(digest(*store), before);
}

TEST(Wal, SegmentNamesRoundTrip) {
  EXPECT_EQ(Wal::segment_name(7), "wal-00000007.log");
  EXPECT_EQ(Wal::parse_segment_name("wal-00000007.log"), 7u);
  EXPECT_EQ(Wal::parse_segment_name("wal-123456789.log"), 123456789u);
  EXPECT_FALSE(Wal::parse_segment_name("snapshot"));
  EXPECT_FALSE(Wal::parse_segment_name("wal-.log"));
  EXPECT_FALSE(Wal::parse_segment_name("wal-12x4.log"));
  EXPECT_FALSE(Wal::parse_segment_name("wal-1.log.tmp"));
}

}  // namespace
}  // namespace ceems::tsdb
