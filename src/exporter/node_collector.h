// Node collector: whole-node CPU and memory from /proc (§II-A.a, "node-
// level metrics ... from /sys and /proc"). These are the denominators of
// Eq. 1 (T_node, M_node). Metric names follow node_exporter conventions.
#pragma once

#include "exporter/collector.h"
#include "simfs/procfs.h"

namespace ceems::exporter {

class NodeCollector final : public Collector {
 public:
  explicit NodeCollector(simfs::FsPtr fs) : fs_(std::move(fs)) {}

  std::string name() const override { return "node"; }
  std::vector<metrics::MetricFamily> collect(common::TimestampMs now) override;

 private:
  simfs::FsPtr fs_;
};

}  // namespace ceems::exporter
