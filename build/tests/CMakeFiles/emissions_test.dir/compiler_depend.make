# Empty compiler generated dependencies file for emissions_test.
# This may be replaced when dependencies are built.
