#include "apiserver/schema.h"

namespace ceems::apiserver {

using reldb::Column;
using reldb::ColumnType;
using reldb::Row;
using reldb::Schema;
using reldb::Value;

reldb::Schema units_schema() {
  Schema schema;
  schema.columns = {
      {"uuid", ColumnType::kText},
      {"cluster", ColumnType::kText},
      {"resource_manager", ColumnType::kText},
      {"name", ColumnType::kText},
      {"user", ColumnType::kText},
      {"project", ColumnType::kText},
      {"partition", ColumnType::kText},
      {"state", ColumnType::kText},
      {"created_at_ms", ColumnType::kInt},
      {"started_at_ms", ColumnType::kInt},
      {"ended_at_ms", ColumnType::kInt},
      {"elapsed_ms", ColumnType::kInt},
      {"num_nodes", ColumnType::kInt},
      {"num_cpus", ColumnType::kInt},
      {"num_gpus", ColumnType::kInt},
      {"total_cpu_time_seconds", ColumnType::kReal},
      {"avg_cpu_usage", ColumnType::kReal},
      {"avg_cpu_mem_bytes", ColumnType::kReal},
      {"avg_gpu_usage", ColumnType::kReal},
      {"total_cpu_energy_joules", ColumnType::kReal},
      {"total_gpu_energy_joules", ColumnType::kReal},
      {"total_energy_joules", ColumnType::kReal},
      {"total_emissions_grams", ColumnType::kReal},
      {"total_io_read_bytes", ColumnType::kReal},
      {"total_io_write_bytes", ColumnType::kReal},
  };
  schema.primary_key = "uuid";
  return schema;
}

reldb::Row unit_to_row(const Unit& unit) {
  return Row{
      Value(unit.uuid),
      Value(unit.cluster),
      Value(unit.resource_manager),
      Value(unit.name),
      Value(unit.user),
      Value(unit.project),
      Value(unit.partition),
      Value(unit.state),
      Value(unit.created_at_ms),
      Value(unit.started_at_ms),
      Value(unit.ended_at_ms),
      Value(unit.elapsed_ms),
      Value(unit.num_nodes),
      Value(unit.num_cpus),
      Value(unit.num_gpus),
      Value(unit.total_cpu_time_seconds),
      Value(unit.avg_cpu_usage),
      Value(unit.avg_cpu_mem_bytes),
      Value(unit.avg_gpu_usage),
      Value(unit.total_cpu_energy_joules),
      Value(unit.total_gpu_energy_joules),
      Value(unit.total_energy_joules),
      Value(unit.total_emissions_grams),
      Value(unit.total_io_read_bytes),
      Value(unit.total_io_write_bytes),
  };
}

Unit unit_from_row(const reldb::Row& row) {
  Unit unit;
  std::size_t i = 0;
  unit.uuid = row[i++].as_text();
  unit.cluster = row[i++].as_text();
  unit.resource_manager = row[i++].as_text();
  unit.name = row[i++].as_text();
  unit.user = row[i++].as_text();
  unit.project = row[i++].as_text();
  unit.partition = row[i++].as_text();
  unit.state = row[i++].as_text();
  unit.created_at_ms = row[i++].as_int();
  unit.started_at_ms = row[i++].as_int();
  unit.ended_at_ms = row[i++].as_int();
  unit.elapsed_ms = row[i++].as_int();
  unit.num_nodes = row[i++].as_int();
  unit.num_cpus = row[i++].as_int();
  unit.num_gpus = row[i++].as_int();
  unit.total_cpu_time_seconds = row[i++].as_real();
  unit.avg_cpu_usage = row[i++].as_real();
  unit.avg_cpu_mem_bytes = row[i++].as_real();
  unit.avg_gpu_usage = row[i++].as_real();
  unit.total_cpu_energy_joules = row[i++].as_real();
  unit.total_gpu_energy_joules = row[i++].as_real();
  unit.total_energy_joules = row[i++].as_real();
  unit.total_emissions_grams = row[i++].as_real();
  unit.total_io_read_bytes = row[i++].as_real();
  unit.total_io_write_bytes = row[i++].as_real();
  return unit;
}

common::Json Unit::to_json() const {
  common::JsonObject object;
  object["uuid"] = common::Json(uuid);
  object["cluster"] = common::Json(cluster);
  object["resource_manager"] = common::Json(resource_manager);
  object["name"] = common::Json(name);
  object["user"] = common::Json(user);
  object["project"] = common::Json(project);
  object["partition"] = common::Json(partition);
  object["state"] = common::Json(state);
  object["created_at_ms"] = common::Json(created_at_ms);
  object["started_at_ms"] = common::Json(started_at_ms);
  object["ended_at_ms"] = common::Json(ended_at_ms);
  object["elapsed_ms"] = common::Json(elapsed_ms);
  object["num_nodes"] = common::Json(num_nodes);
  object["num_cpus"] = common::Json(num_cpus);
  object["num_gpus"] = common::Json(num_gpus);
  object["total_cpu_time_seconds"] = common::Json(total_cpu_time_seconds);
  object["avg_cpu_usage"] = common::Json(avg_cpu_usage);
  object["avg_cpu_mem_bytes"] = common::Json(avg_cpu_mem_bytes);
  object["avg_gpu_usage"] = common::Json(avg_gpu_usage);
  object["total_cpu_energy_joules"] = common::Json(total_cpu_energy_joules);
  object["total_gpu_energy_joules"] = common::Json(total_gpu_energy_joules);
  object["total_energy_joules"] = common::Json(total_energy_joules);
  object["total_emissions_grams"] = common::Json(total_emissions_grams);
  object["total_io_read_bytes"] = common::Json(total_io_read_bytes);
  object["total_io_write_bytes"] = common::Json(total_io_write_bytes);
  return common::Json(std::move(object));
}

void create_ceems_tables(reldb::Database& db) {
  if (db.has_table(kUnitsTable)) return;
  db.create_table(kUnitsTable, units_schema());
  db.create_index(kUnitsTable, "user");
  db.create_index(kUnitsTable, "project");
  db.create_index(kUnitsTable, "state");
}

}  // namespace ceems::apiserver
