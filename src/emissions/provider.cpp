#include "emissions/provider.h"

namespace ceems::emissions {

std::optional<EmissionFactor> ProviderChain::factor(const std::string& zone,
                                                    common::TimestampMs t_ms) {
  for (const auto& provider : providers_) {
    if (auto result = provider->factor(zone, t_ms)) {
      if (lkg_ttl_ms_ > 0) {
        std::lock_guard lock(mu_);
        last_known_good_[zone] = {*result, t_ms};
      }
      return result;
    }
  }
  if (lkg_ttl_ms_ > 0) {
    std::lock_guard lock(mu_);
    auto it = last_known_good_.find(zone);
    if (it != last_known_good_.end() &&
        t_ms - it->second.fetched_ms <= lkg_ttl_ms_) {
      ++lkg_served_;
      return it->second.factor;
    }
  }
  return std::nullopt;
}

uint64_t ProviderChain::lkg_served() const {
  std::lock_guard lock(mu_);
  return lkg_served_;
}

std::optional<EmissionFactor> FaultInjectedProvider::factor(
    const std::string& zone, common::TimestampMs t_ms) {
  if (hook_) {
    auto fault = hook_("emissions.provider", inner_->name() + "/" + zone);
    if (fault) {
      ++faults_injected_;
      return std::nullopt;
    }
  }
  return inner_->factor(zone, t_ms);
}

double emissions_grams(double joules, double gco2_per_kwh) {
  // 1 kWh = 3.6e6 J.
  return joules / 3.6e6 * gco2_per_kwh;
}

}  // namespace ceems::emissions
