file(REMOVE_RECURSE
  "CMakeFiles/exporter_test.dir/exporter_test.cpp.o"
  "CMakeFiles/exporter_test.dir/exporter_test.cpp.o.d"
  "exporter_test"
  "exporter_test.pdb"
  "exporter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exporter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
