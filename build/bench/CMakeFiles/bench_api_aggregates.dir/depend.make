# Empty dependencies file for bench_api_aggregates.
# This may be replaced when dependencies are built.
