// E1 — exporter lightweight-ness (paper §II-B.a prose: "the exporter
// consumes 15-20 MB of memory and each scrape request takes less than 1
// microsecond of CPU time").
//
// Measured here:
//   * collector-sweep cost (render, no HTTP) for CPU and GPU nodes at
//     several per-node job counts — this is the exporter's CPU cost per
//     scrape;
//   * full HTTP round trip cost for one scrape;
//   * process RSS before/after serving thousands of scrapes (the memory
//     claim; our process also carries the simulator, so the delta is the
//     comparable number).
//
// Expected shape: render cost in the tens-of-microseconds range, linear in
// the number of compute units, far below any 30 s scrape interval; RSS
// delta across 10k scrapes ≈ 0 (no per-scrape allocatio accumulation).
#include <benchmark/benchmark.h>

#include "common/logging.h"

#include <cstdio>

#include "core/node_exporter_factory.h"
#include "exporter/self_collector.h"
#include "http/client.h"
#include "metrics/text_format.h"

using namespace ceems;

namespace {

node::NodeSimPtr make_loaded_node(bool gpu, int jobs,
                                  std::shared_ptr<common::SimClock>& clock) {
  clock = common::make_sim_clock(1700000000000LL);
  auto sim = std::make_shared<node::NodeSim>(
      gpu ? node::make_v100_node("bench") : node::make_intel_cpu_node("bench"),
      clock, 1);
  for (int i = 0; i < jobs; ++i) {
    node::WorkloadPlacement placement;
    placement.job_id = 1000 + i;
    placement.user = "u";
    placement.alloc_cpus = 2;
    placement.memory_limit_bytes = 4LL << 30;
    if (gpu && i < static_cast<int>(sim->spec().gpus.size())) {
      placement.gpu_ordinals = {i};
    }
    node::WorkloadBehavior behavior;
    behavior.cpu_util_mean = 0.8;
    behavior.gpu_util_mean = 0.7;
    sim->add_workload(placement, behavior);
  }
  for (int i = 0; i < 5; ++i) sim->step(30000);
  return sim;
}

void BM_render_cpu_node(benchmark::State& state) {
  std::shared_ptr<common::SimClock> clock;
  auto node = make_loaded_node(false, static_cast<int>(state.range(0)), clock);
  auto exporter = core::make_ceems_exporter(node, clock);
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string body = exporter->render(clock->now_ms());
    bytes = body.size();
    benchmark::DoNotOptimize(body);
  }
  state.counters["exposition_bytes"] = static_cast<double>(bytes);
  state.counters["jobs"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_render_cpu_node)->Arg(0)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_render_gpu_node(benchmark::State& state) {
  std::shared_ptr<common::SimClock> clock;
  auto node = make_loaded_node(true, static_cast<int>(state.range(0)), clock);
  auto exporter = core::make_ceems_exporter(node, clock);
  for (auto _ : state) {
    std::string body = exporter->render(clock->now_ms());
    benchmark::DoNotOptimize(body);
  }
  state.counters["jobs"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_render_gpu_node)->Arg(1)->Arg(4)->Arg(16);

void BM_http_scrape_roundtrip(benchmark::State& state) {
  std::shared_ptr<common::SimClock> clock;
  auto node = make_loaded_node(false, 8, clock);
  auto exporter = core::make_ceems_exporter(node, clock);
  exporter->start();
  http::Client client;
  for (auto _ : state) {
    auto result = client.get(exporter->metrics_url());
    if (!result.ok || result.response.status != 200) {
      state.SkipWithError("scrape failed");
      break;
    }
    benchmark::DoNotOptimize(result.response.body);
  }
  exporter->stop();
}
BENCHMARK(BM_http_scrape_roundtrip);

void BM_exposition_parse(benchmark::State& state) {
  std::shared_ptr<common::SimClock> clock;
  auto node = make_loaded_node(false, 16, clock);
  auto exporter = core::make_ceems_exporter(node, clock);
  std::string body = exporter->render(clock->now_ms());
  for (auto _ : state) {
    auto parsed = metrics::parse_exposition(body);
    benchmark::DoNotOptimize(parsed);
  }
  state.counters["samples"] = static_cast<double>(
      metrics::parse_exposition(body).samples.size());
}
BENCHMARK(BM_exposition_parse);

}  // namespace

int main(int argc, char** argv) {
  common::set_log_level(common::LogLevel::kError);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Memory claim (E1): RSS delta across 10k scrapes must be ~0, and the
  // absolute exporter-side state is tiny. The paper's 15-20 MB is a whole
  // Go process; the comparable number here is the marginal footprint.
  std::shared_ptr<common::SimClock> clock;
  auto node = make_loaded_node(false, 16, clock);
  std::size_t rss_before_build = exporter::process_resident_bytes();
  auto exporter = core::make_ceems_exporter(node, clock);
  exporter->render(clock->now_ms());
  std::size_t rss_after_build = exporter::process_resident_bytes();
  for (int i = 0; i < 10000; ++i) {
    std::string body = exporter->render(clock->now_ms());
    benchmark::DoNotOptimize(body);
  }
  std::size_t rss_after_scrapes = exporter::process_resident_bytes();
  std::printf("\nE1 memory: exporter construction cost %.2f MB, "
              "10k scrapes leaked %.2f MB (process total %.1f MB)\n",
              (rss_after_build - rss_before_build) / 1048576.0,
              (rss_after_scrapes - rss_after_build) / 1048576.0,
              rss_after_scrapes / 1048576.0);
  return 0;
}
