#include "simfs/real_fs.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

namespace ceems::simfs {

namespace stdfs = std::filesystem;

RealFs::RealFs(std::string root) : root_(std::move(root)) {
  while (!root_.empty() && root_.back() == '/') root_.pop_back();
}

std::string RealFs::resolve(const std::string& path) const {
  return root_ + path;
}

std::optional<std::string> RealFs::read(const std::string& path) const {
  std::ifstream in(resolve(path));
  if (!in.good()) return std::nullopt;
  // Pseudo-files report size 0; read by streaming, not by seeking.
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return content;
}

bool RealFs::exists(const std::string& path) const {
  std::error_code ec;
  return stdfs::exists(resolve(path), ec);
}

bool RealFs::is_dir(const std::string& path) const {
  std::error_code ec;
  return stdfs::is_directory(resolve(path), ec);
}

std::vector<std::string> RealFs::list_dir(const std::string& path) const {
  std::vector<std::string> out;
  std::error_code ec;
  for (stdfs::directory_iterator it(resolve(path), ec), end;
       !ec && it != end; it.increment(ec)) {
    out.push_back(it->path().filename().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ceems::simfs
