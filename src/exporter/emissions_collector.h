// Emissions collector (§II-A.c): exports the current emission factor per
// provider so recording rules can turn watts into gCO2e/h. Static and
// real-time providers are exported side by side, letting operators pick in
// their rules (or mix, e.g. real-time with static fallback via the chain).
#pragma once

#include <vector>

#include "emissions/provider.h"
#include "exporter/collector.h"

namespace ceems::exporter {

class EmissionsCollector final : public Collector {
 public:
  EmissionsCollector(std::vector<emissions::ProviderPtr> providers,
                     std::string country_code)
      : providers_(std::move(providers)),
        country_code_(std::move(country_code)) {}

  std::string name() const override { return "emissions"; }
  std::vector<metrics::MetricFamily> collect(common::TimestampMs now) override;

 private:
  std::vector<emissions::ProviderPtr> providers_;
  std::string country_code_;
};

}  // namespace ceems::exporter
