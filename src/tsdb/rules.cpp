#include "tsdb/rules.h"

#include <set>

#include "common/logging.h"
#include "common/strutil.h"

namespace ceems::tsdb {

RuleEngine::RuleEngine(StorePtr store, promql::EngineOptions options)
    : store_(std::move(store)), engine_(options) {}

void RuleEngine::add_group(RuleGroup group) {
  for (auto& rule : group.rules) {
    if (!metrics::is_valid_metric_name(rule.record))
      throw promql::ParseError("invalid record name: " + rule.record);
    rule.parsed = promql::parse(rule.expr);
  }
  for (auto& rule : group.alerts) {
    if (rule.alert.empty())
      throw promql::ParseError("alerting rule without a name");
    rule.parsed = promql::parse(rule.expr);
  }
  std::lock_guard lock(eval_mu_);
  groups_.push_back(std::move(group));
  last_eval_.push_back(-1);
}

void RuleEngine::evaluate_alert(const AlertingRule& rule,
                                common::TimestampMs t, RuleEvalStats& stats) {
  promql::Value value;
  try {
    value = engine_.eval(*store_, rule.parsed, t);
  } catch (const std::exception& e) {
    ++stats.rule_failures;
    CEEMS_LOG_WARN("rules") << "alert " << rule.alert << ": " << e.what();
    return;
  }
  if (value.kind != promql::Value::Kind::kVector) {
    ++stats.rule_failures;
    return;
  }

  // Mark the alert instances present in this evaluation.
  std::set<uint64_t> seen;
  for (const auto& sample : value.vector) {
    Labels labels = sample.labels.without_name().with("alertname", rule.alert);
    for (const auto& [name, label_value] : rule.static_labels) {
      labels = labels.with(name, label_value);
    }
    uint64_t key = labels.fingerprint();
    seen.insert(key);
    auto it = active_.find(key);
    if (it == active_.end()) {
      ActiveAlert alert;
      alert.name = rule.alert;
      alert.labels = labels;
      alert.active_since_ms = t;
      alert.value = sample.value;
      alert.state = rule.for_ms == 0 ? AlertState::kFiring
                                     : AlertState::kPending;
      it = active_.emplace(key, std::move(alert)).first;
    }
    ActiveAlert& alert = it->second;
    alert.value = sample.value;
    if (alert.state == AlertState::kPending &&
        t - alert.active_since_ms >= rule.for_ms) {
      alert.state = AlertState::kFiring;
    }
    if (alert.state == AlertState::kFiring) {
      store_->append(alert.labels.with("alertstate", "firing")
                         .with_name("ALERTS"),
                     t, 1);
      ++stats.alerts_firing;
    } else {
      ++stats.alerts_pending;
    }
  }
  // Resolve instances of this alert that stopped matching. An instance
  // that was firing wrote ALERTS samples; end that series with a staleness
  // marker so instant queries drop it immediately instead of it lingering
  // for a full lookback window after resolution.
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.name == rule.alert && !seen.count(it->first)) {
      if (it->second.state == AlertState::kFiring) {
        store_->append(it->second.labels.with("alertstate", "firing")
                           .with_name("ALERTS"),
                       t, metrics::stale_marker());
      }
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
}

RuleEvalStats RuleEngine::evaluate_group(RuleGroup& group,
                                         common::TimestampMs t) {
  RuleEvalStats stats;
  for (const auto& alert_rule : group.alerts) {
    ++stats.rules_evaluated;
    evaluate_alert(alert_rule, t, stats);
  }
  for (const auto& rule : group.rules) {
    ++stats.rules_evaluated;
    try {
      promql::Value value = engine_.eval(*store_, rule.parsed, t);
      if (value.kind != promql::Value::Kind::kVector) {
        CEEMS_LOG_WARN("rules")
            << "rule " << rule.record << " did not yield a vector";
        ++stats.rule_failures;
        continue;
      }
      for (const auto& sample : value.vector) {
        Labels labels = sample.labels.with_name(rule.record);
        for (const auto& [name, label_value] : rule.static_labels) {
          labels = labels.with(name, label_value);
        }
        if (store_->append(labels, t, sample.value)) ++stats.samples_written;
      }
    } catch (const std::exception& e) {
      ++stats.rule_failures;
      CEEMS_LOG_WARN("rules") << "rule " << rule.record << ": " << e.what();
    }
  }
  return stats;
}

RuleEvalStats RuleEngine::evaluate_due(common::TimestampMs t) {
  RuleEvalStats total;
  std::lock_guard lock(eval_mu_);
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    if (last_eval_[i] >= 0 && t - last_eval_[i] < groups_[i].interval_ms)
      continue;
    last_eval_[i] = t;
    RuleEvalStats stats = evaluate_group(groups_[i], t);
    total.rules_evaluated += stats.rules_evaluated;
    total.samples_written += stats.samples_written;
    total.rule_failures += stats.rule_failures;
    total.alerts_firing += stats.alerts_firing;
    total.alerts_pending += stats.alerts_pending;
  }
  return total;
}

RuleEvalStats RuleEngine::evaluate_all(common::TimestampMs t) {
  RuleEvalStats total;
  std::lock_guard lock(eval_mu_);
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    last_eval_[i] = t;
    RuleEvalStats stats = evaluate_group(groups_[i], t);
    total.rules_evaluated += stats.rules_evaluated;
    total.samples_written += stats.samples_written;
    total.rule_failures += stats.rule_failures;
    total.alerts_firing += stats.alerts_firing;
    total.alerts_pending += stats.alerts_pending;
  }
  return total;
}

std::vector<ActiveAlert> RuleEngine::active_alerts() const {
  std::lock_guard lock(eval_mu_);
  std::vector<ActiveAlert> out;
  out.reserve(active_.size());
  for (const auto& [key, alert] : active_) out.push_back(alert);
  return out;
}

std::vector<RuleGroup> parse_rule_groups(const common::Json& root) {
  std::vector<RuleGroup> groups;
  auto groups_node = root.get("groups");
  if (!groups_node || !groups_node->is_array()) return groups;
  for (const auto& group_node : groups_node->as_array()) {
    RuleGroup group;
    group.name = group_node.get_string("name", "unnamed");
    std::string interval = group_node.get_string("interval", "30s");
    group.interval_ms =
        common::parse_duration_ms(interval).value_or(30 * 1000);
    auto rules_node = group_node.get("rules");
    if (rules_node && rules_node->is_array()) {
      for (const auto& rule_node : rules_node->as_array()) {
        std::vector<std::pair<std::string, std::string>> static_labels;
        if (auto labels_node = rule_node.get("labels");
            labels_node && labels_node->is_object()) {
          for (const auto& [name, value] : labels_node->as_object()) {
            static_labels.emplace_back(
                name, value.is_string() ? value.as_string() : value.dump());
          }
        }
        if (rule_node.get("alert")) {
          AlertingRule rule;
          rule.alert = rule_node.get_string("alert");
          rule.expr = rule_node.get_string("expr");
          rule.for_ms = common::parse_duration_ms(
                            rule_node.get_string("for", "0s"))
                            .value_or(0);
          rule.static_labels = std::move(static_labels);
          group.alerts.push_back(std::move(rule));
        } else {
          RecordingRule rule;
          rule.record = rule_node.get_string("record");
          rule.expr = rule_node.get_string("expr");
          rule.static_labels = std::move(static_labels);
          group.rules.push_back(std::move(rule));
        }
      }
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace ceems::tsdb
