// ClusterSim — the top-level driver tying cluster, scheduler and workload
// generator to a SimClock. Each step: enqueue due arrivals, run a
// scheduling pass, advance node physics, move the clock. An optional
// per-step hook lets the monitoring stack scrape deterministically between
// steps (the integration tests and the Jean-Zay example use this).
#pragma once

#include <functional>
#include <memory>

#include "common/clock.h"
#include "slurm/cluster.h"
#include "slurm/scheduler.h"
#include "slurm/slurmdbd.h"
#include "slurm/workload_gen.h"

namespace ceems::slurm {

struct JeanZayScale {
  // Node counts at scale 1.0 approximate the paper's deployment: ~1400
  // heterogeneous nodes, >3500 GPUs.
  int intel_cpu_nodes = 720;
  int amd_cpu_nodes = 280;
  int v100_nodes = 260;   // 4 GPUs each
  int a100_nodes = 100;   // 8 GPUs each
  int h100_nodes = 40;    // 4 GPUs each

  JeanZayScale scaled(double factor) const;
  int total_nodes() const {
    return intel_cpu_nodes + amd_cpu_nodes + v100_nodes + a100_nodes +
           h100_nodes;
  }
};

// Builds a Jean-Zay-like cluster with the standard five partitions:
// cpu_p1 (Intel), cpu_p2 (AMD), gpu_p1 (V100), gpu_p4 (A100), gpu_p6 (H100).
std::unique_ptr<Cluster> make_jean_zay_cluster(
    common::ClockPtr clock, const JeanZayScale& scale, uint64_t seed);

// Matching default workload mix for that cluster.
WorkloadGenConfig make_jean_zay_workload_config(const JeanZayScale& scale,
                                                double jobs_per_day);

class ClusterSim {
 public:
  ClusterSim(std::shared_ptr<common::SimClock> clock,
             std::unique_ptr<Cluster> cluster, WorkloadGenConfig gen_config,
             uint64_t seed);

  Cluster& cluster() { return *cluster_; }
  Scheduler& scheduler() { return *scheduler_; }
  SlurmDbd& dbd() { return dbd_; }
  WorkloadGenerator& generator() { return generator_; }
  std::shared_ptr<common::SimClock> clock() { return clock_; }

  // Runs for `duration_ms` of simulated time in `step_ms` increments,
  // invoking `on_step(now)` after each step (clock already advanced).
  void run_for(int64_t duration_ms, int64_t step_ms,
               const std::function<void(common::TimestampMs)>& on_step = {});

  // A single step (submit arrivals → schedule → node physics → clock).
  void step(int64_t step_ms);

  uint64_t jobs_submitted() const { return jobs_submitted_; }

 private:
  std::shared_ptr<common::SimClock> clock_;
  std::unique_ptr<Cluster> cluster_;
  SlurmDbd dbd_;
  std::unique_ptr<Scheduler> scheduler_;
  WorkloadGenerator generator_;
  uint64_t jobs_submitted_ = 0;
};

}  // namespace ceems::slurm
