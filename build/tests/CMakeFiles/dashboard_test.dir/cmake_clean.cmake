file(REMOVE_RECURSE
  "CMakeFiles/dashboard_test.dir/dashboard_test.cpp.o"
  "CMakeFiles/dashboard_test.dir/dashboard_test.cpp.o.d"
  "dashboard_test"
  "dashboard_test.pdb"
  "dashboard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashboard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
