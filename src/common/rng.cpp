#include "common/rng.h"

#include <cmath>

namespace ceems::common {

uint64_t Rng::next_u64() {
  // SplitMix64 (Steele, Lea, Flood 2014).
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double Rng::next_double() {
  // 53 random bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  if (hi <= lo) return lo;
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(next_u64() % range);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double mean) {
  double u = next_double();
  if (u >= 1.0) u = 0.9999999999;
  return -mean * std::log(1.0 - u);
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_) {
    have_spare_ = false;
    return mean + stddev * spare_;
  }
  double u1 = next_double();
  double u2 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  spare_ = r * std::sin(theta);
  have_spare_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::chance(double probability) { return next_double() < probability; }

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace ceems::common
