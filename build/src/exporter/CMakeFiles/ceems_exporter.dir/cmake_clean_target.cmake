file(REMOVE_RECURSE
  "libceems_exporter.a"
)
