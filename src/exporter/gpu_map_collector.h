// GPU-to-workload map collector (§II-A.d): "the indices of GPU devices
// bound to a workload will not be available post-mortem ... thus CEEMS
// collects and stores the map information of workload ID to GPU indices."
// On a real node the Go exporter recovers the binding from the job
// environment / cgroup device lists; here it is read from the node
// simulator's workload snapshot (documented substitution) — the exported
// metric is identical:
//   ceems_compute_unit_gpu_index_flag{uuid,index,gpu_uuid,manager} 1
#pragma once

#include <functional>

#include "exporter/collector.h"
#include "node/node_sim.h"

namespace ceems::exporter {

class GpuMapCollector final : public Collector {
 public:
  using WorkloadSource = std::function<std::vector<node::WorkloadInfo>()>;

  GpuMapCollector(WorkloadSource source, const node::GpuBank& bank,
                  std::string manager = "slurm")
      : source_(std::move(source)), bank_(bank), manager_(std::move(manager)) {}

  std::string name() const override { return "gpu_map"; }
  std::vector<metrics::MetricFamily> collect(common::TimestampMs now) override;

 private:
  WorkloadSource source_;
  const node::GpuBank& bank_;
  std::string manager_;
};

}  // namespace ceems::exporter
