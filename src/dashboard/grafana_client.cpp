#include "dashboard/grafana_client.h"

#include <cstdio>

#include "common/strutil.h"

namespace ceems::dashboard {

using common::Json;

http::HeaderMap GrafanaClient::auth_headers() const {
  http::HeaderMap headers;
  headers["X-Grafana-User"] = user_;
  return headers;
}

QueryResult GrafanaClient::instant_query(const std::string& query,
                                         common::TimestampMs t_ms) {
  QueryResult out;
  char time_buf[32];
  std::snprintf(time_buf, sizeof(time_buf), "%.3f",
                static_cast<double>(t_ms) / 1000.0);
  std::string url = prometheus_url_ + "/api/v1/query?query=" +
                    http::url_encode(query) + "&time=" + time_buf;
  auto result = client_.get(url, auth_headers());
  out.http_status = result.response.status;
  if (!result.ok) {
    out.error = result.error;
    return out;
  }
  if (result.response.status != 200) {
    out.error = result.response.body;
    return out;
  }
  try {
    Json body = Json::parse(result.response.body);
    for (const auto& entry : body.at("data").at("result").as_array()) {
      double value =
          common::parse_double(entry.at("value").as_array()[1].as_string())
              .value_or(0);
      out.instant.emplace_back(entry.at("metric"), value);
    }
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = std::string("bad response json: ") + e.what();
  }
  return out;
}

QueryResult GrafanaClient::range_query(const std::string& query,
                                       common::TimestampMs start_ms,
                                       common::TimestampMs end_ms,
                                       int64_t step_ms) {
  QueryResult out;
  // Plain decimal seconds: scientific notation would put a '+' in the
  // query string, which decodes to a space.
  char start_buf[32], end_buf[32];
  std::snprintf(start_buf, sizeof(start_buf), "%.3f",
                static_cast<double>(start_ms) / 1000.0);
  std::snprintf(end_buf, sizeof(end_buf), "%.3f",
                static_cast<double>(end_ms) / 1000.0);
  std::string url = prometheus_url_ + "/api/v1/query_range?query=" +
                    http::url_encode(query) + "&start=" + start_buf +
                    "&end=" + end_buf + "&step=" +
                    common::format_duration_ms(step_ms);
  auto result = client_.get(url, auth_headers());
  out.http_status = result.response.status;
  if (!result.ok) {
    out.error = result.error;
    return out;
  }
  if (result.response.status != 200) {
    out.error = result.response.body;
    return out;
  }
  try {
    Json body = Json::parse(result.response.body);
    for (const auto& entry : body.at("data").at("result").as_array()) {
      QueryResult::RangeSeries series;
      series.labels = entry.at("metric");
      for (const auto& pair : entry.at("values").as_array()) {
        tsdb::SamplePoint point;
        point.t = static_cast<common::TimestampMs>(
            pair.as_array()[0].as_number() * 1000.0);
        point.v = common::parse_double(pair.as_array()[1].as_string())
                      .value_or(0);
        series.points.push_back(point);
      }
      out.range.push_back(std::move(series));
    }
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = std::string("bad response json: ") + e.what();
  }
  return out;
}

std::optional<Json> GrafanaClient::api_get(const std::string& path_and_query) {
  auto result = client_.get(api_server_url_ + path_and_query, auth_headers());
  if (!result.ok || result.response.status != 200) return std::nullopt;
  try {
    return Json::parse(result.response.body);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace ceems::dashboard
