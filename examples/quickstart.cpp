// Quickstart: the smallest end-to-end CEEMS deployment.
//
// Builds a 7-node Jean-Zay slice from the reference YAML config, runs one
// simulated hour of batch jobs under full monitoring, and prints what every
// layer of Fig. 1 saw: scrape stats, recording-rule outputs, the units DB,
// and a per-user usage rollup.
//
//   ./quickstart [path/to/config.yaml]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/strutil.h"
#include "core/config.h"
#include "dashboard/panels.h"

using namespace ceems;

int main(int argc, char** argv) {
  common::set_log_level(common::LogLevel::kError);

  // 1. One YAML file configures every component (§II-D).
  std::string yaml = core::reference_config_yaml();
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    yaml = buffer.str();
  }
  core::LoadedConfig config = core::parse_config_text(yaml);
  config.sim.cluster_scale = 0.005;  // ~7 nodes for the quickstart

  // 2. Simulated cluster (the substrate CEEMS monitors).
  auto clock = common::make_sim_clock(1700000000000LL);  // fixed epoch
  slurm::JeanZayScale scale =
      slurm::JeanZayScale{}.scaled(config.sim.cluster_scale);
  auto gen = slurm::make_jean_zay_workload_config(scale,
                                                  config.sim.jobs_per_day);
  gen.seed = config.sim.seed;
  slurm::ClusterSim sim(clock,
                        slurm::make_jean_zay_cluster(clock, scale,
                                                     config.sim.seed),
                        gen, config.sim.seed);

  // 3. The CEEMS stack on top.
  core::CeemsStack stack(sim, config.stack);

  std::printf("CEEMS quickstart: %zu nodes, %s scrape interval\n",
              sim.cluster().node_count(),
              common::format_duration_ms(config.stack.scrape_interval_ms)
                  .c_str());

  // 4. One simulated hour; scrape/rules between steps, API update per min.
  common::TimestampMs next_update = clock->now_ms();
  sim.run_for(common::kMillisPerHour, config.sim.sim_step_ms,
              [&](common::TimestampMs now) {
                stack.pipeline_step();
                if (now >= next_update) {
                  stack.update_api();
                  next_update = now + 60000;
                }
              });
  stack.update_api();

  // 5. Report.
  auto scrape_stats = stack.scraper().stats();
  auto store_stats = stack.hot_store()->stats();
  std::printf("\n-- pipeline --\n");
  std::printf("scrapes: %llu (%llu failed), samples ingested: %llu\n",
              (unsigned long long)scrape_stats.scrapes_total,
              (unsigned long long)scrape_stats.scrapes_failed,
              (unsigned long long)scrape_stats.samples_ingested);
  std::printf("hot TSDB: %zu series, %zu samples (~%.1f MiB)\n",
              store_stats.num_series, store_stats.num_samples,
              store_stats.approx_bytes / 1024.0 / 1024.0);
  std::printf("jobs submitted: %llu, completed: %zu, running: %zu\n",
              (unsigned long long)sim.jobs_submitted(),
              sim.dbd().count_in_state(slurm::JobState::kCompleted),
              sim.dbd().count_in_state(slurm::JobState::kRunning));

  // Per-job power straight from the recording rules (Eq. 1 output).
  tsdb::promql::Engine engine;
  auto power = engine.eval(*stack.hot_store(),
                           "topk(5, sum by (uuid) (ceems_job_power_watts))",
                           clock->now_ms());
  std::printf("\n-- top jobs by estimated power (Eq. 1 recording rule) --\n");
  for (const auto& sample : power.vector) {
    std::printf("  job %-8s %7.1f W\n",
                std::string(*sample.labels.get("uuid")).c_str(),
                sample.value);
  }

  // Usage rollup from the units DB.
  reldb::Query query;
  query.group_by = {"user"};
  query.aggregates = {{reldb::AggFn::kCount, "", "units"},
                      {reldb::AggFn::kSum, "total_energy_joules", "joules"},
                      {reldb::AggFn::kSum, "total_emissions_grams", "gco2"}};
  query.order_by = "joules";
  query.descending = true;
  query.limit = 5;
  auto usage = stack.db().query(apiserver::kUnitsTable, query);
  std::printf("\n-- top users by energy (units DB) --\n");
  for (std::size_t i = 0; i < usage.rows.size(); ++i) {
    std::printf("  %-8s units=%-3lld energy=%-10s emissions=%s\n",
                usage.at(i, "user").as_text().c_str(),
                (long long)usage.at(i, "units").as_int(),
                dashboard::format_joules(usage.at(i, "joules").as_real())
                    .c_str(),
                dashboard::format_co2(usage.at(i, "gco2").as_real()).c_str());
  }
  std::printf("\nquickstart OK\n");
  return 0;
}
