#include "slurm/slurmdbd.h"

#include <algorithm>

namespace ceems::slurm {

void SlurmDbd::upsert(const Job& job) {
  std::lock_guard lock(mu_);
  jobs_[job.job_id] = job;
  common::TimestampMs changed = std::max(
      {job.submit_time_ms, job.start_time_ms, job.end_time_ms});
  last_change_[job.job_id] = changed;
}

std::optional<Job> SlurmDbd::job(int64_t job_id) const {
  std::lock_guard lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second;
}

std::vector<Job> SlurmDbd::jobs_active_between(
    common::TimestampMs start_ms, common::TimestampMs end_ms) const {
  std::lock_guard lock(mu_);
  std::vector<Job> out;
  for (const auto& [id, job] : jobs_) {
    if (job.start_time_ms == 0) continue;  // never started
    if (job.start_time_ms >= end_ms) continue;
    if (job.end_time_ms != 0 && job.end_time_ms <= start_ms) continue;
    out.push_back(job);
  }
  return out;
}

std::vector<Job> SlurmDbd::jobs_changed_since(
    common::TimestampMs since_ms) const {
  std::lock_guard lock(mu_);
  std::vector<Job> out;
  for (const auto& [id, changed] : last_change_) {
    if (changed >= since_ms) out.push_back(jobs_.at(id));
  }
  return out;
}

std::vector<Job> SlurmDbd::all_jobs() const {
  std::lock_guard lock(mu_);
  std::vector<Job> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(job);
  return out;
}

std::size_t SlurmDbd::size() const {
  std::lock_guard lock(mu_);
  return jobs_.size();
}

std::size_t SlurmDbd::count_in_state(JobState state) const {
  std::lock_guard lock(mu_);
  return static_cast<std::size_t>(
      std::count_if(jobs_.begin(), jobs_.end(), [&](const auto& entry) {
        return entry.second.state == state;
      }));
}

}  // namespace ceems::slurm
