# Empty compiler generated dependencies file for longterm_test.
# This may be replaced when dependencies are built.
