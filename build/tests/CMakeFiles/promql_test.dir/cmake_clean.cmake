file(REMOVE_RECURSE
  "CMakeFiles/promql_test.dir/promql_test.cpp.o"
  "CMakeFiles/promql_test.dir/promql_test.cpp.o.d"
  "promql_test"
  "promql_test.pdb"
  "promql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
