#include "reldb/wal.h"

namespace ceems::reldb {

using common::Json;
using common::JsonArray;
using common::JsonObject;

Json value_to_json(const Value& value) {
  if (value.is_null()) return Json(nullptr);
  if (value.is_int()) {
    JsonObject object;
    object["i"] = Json(value.as_int());
    return Json(std::move(object));
  }
  if (value.is_real()) {
    JsonObject object;
    object["r"] = Json(value.as_real());
    return Json(std::move(object));
  }
  JsonObject object;
  object["t"] = Json(value.as_text());
  return Json(std::move(object));
}

Value value_from_json(const common::Json& json) {
  if (json.is_null()) return Value();
  if (auto i = json.get("i")) return Value(i->as_int());
  if (auto r = json.get("r")) return Value(r->as_number());
  if (auto t = json.get("t")) return Value(t->as_string());
  return Value();
}

namespace {

Json row_to_json(const Row& row) {
  JsonArray array;
  for (const auto& value : row) array.push_back(value_to_json(value));
  return Json(std::move(array));
}

Row row_from_json(const Json& json) {
  Row row;
  for (const auto& value : json.as_array()) {
    row.push_back(value_from_json(value));
  }
  return row;
}

Json schema_to_json(const Schema& schema) {
  JsonObject object;
  JsonArray columns;
  for (const auto& column : schema.columns) {
    JsonObject col;
    col["name"] = Json(column.name);
    col["type"] = Json(static_cast<int64_t>(column.type));
    columns.push_back(Json(std::move(col)));
  }
  object["columns"] = Json(std::move(columns));
  object["pk"] = Json(schema.primary_key);
  return Json(std::move(object));
}

Schema schema_from_json(const Json& json) {
  Schema schema;
  schema.primary_key = json.get_string("pk");
  for (const auto& col : json.at("columns").as_array()) {
    Column column;
    column.name = col.get_string("name");
    column.type = static_cast<ColumnType>(col.get_int("type"));
    schema.columns.push_back(std::move(column));
  }
  return schema;
}

}  // namespace

std::string encode_wal_entry(const WalEntry& entry) {
  JsonObject object;
  object["seq"] = Json(static_cast<int64_t>(entry.seq));
  object["table"] = Json(entry.table);
  switch (entry.op) {
    case WalEntry::Op::kCreateTable:
      object["op"] = Json("create");
      object["schema"] = schema_to_json(entry.schema);
      break;
    case WalEntry::Op::kUpsert:
      object["op"] = Json("upsert");
      object["row"] = row_to_json(entry.row);
      break;
    case WalEntry::Op::kErase:
      object["op"] = Json("erase");
      object["pk"] = value_to_json(entry.primary_key);
      break;
  }
  return Json(std::move(object)).dump();
}

std::optional<WalEntry> decode_wal_entry(const std::string& line) {
  try {
    Json json = Json::parse(line);
    WalEntry entry;
    entry.seq = static_cast<uint64_t>(json.get_int("seq"));
    entry.table = json.get_string("table");
    std::string op = json.get_string("op");
    if (op == "create") {
      entry.op = WalEntry::Op::kCreateTable;
      entry.schema = schema_from_json(json.at("schema"));
    } else if (op == "upsert") {
      entry.op = WalEntry::Op::kUpsert;
      entry.row = row_from_json(json.at("row"));
    } else if (op == "erase") {
      entry.op = WalEntry::Op::kErase;
      entry.primary_key = value_from_json(json.at("pk"));
    } else {
      return std::nullopt;
    }
    return entry;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace ceems::reldb
