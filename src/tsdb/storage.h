// Label-indexed in-memory time-series storage — the Prometheus TSDB
// analogue. Series are identified by their full label set; an inverted
// index (label name/value symbols → series ids) accelerates matcher
// evaluation. Samples per series live in Gorilla-compressed chunks
// (tsdb/chunk.h): a run of immutable sealed chunks plus a small mutable
// head, cutting steady-state memory to a few bytes per sample while
// keeping queries bit-identical to the raw representation.
//
// Label strings are interned once in the process-wide SymbolTable
// (metrics/symbols.h); series carry small vectors of 32-bit symbol ids
// with a precomputed fingerprint, so the scrape→storage hot path hashes
// and compares ids, not strings. Fingerprints are not trusted to be
// unique: series ids are distinct from fingerprints, and a fingerprint
// maps to a chain of ids whose label sets are verified on every lookup,
// so colliding label sets get distinct series instead of aliasing.
//
// Concurrency: the series map is sharded by label-set fingerprint into
// kShardCount lock-striped shards, each with its own shared_mutex and
// inverted index. Appends touch exactly one shard, so ingestion from many
// scrape threads scales with cores instead of serialising on one mutex.
// Reads take per-shard shared locks in sequence; a select() that overlaps
// a concurrent write may see the new sample in one shard but not another —
// the same head-block semantics Prometheus exposes to queriers. Sealed
// chunks are immutable and handed to readers by shared_ptr, so a
// SeriesView stays valid after the shard lock is released and decoding
// runs on the reader's thread. Every mutation bumps the owning shard's
// version counter, which the PromQL query-result cache uses for
// invalidation.
//
// The same Queryable interface is implemented by the long-term store, so
// the PromQL engine runs unchanged over either — mirroring how Thanos
// serves the Prometheus remote-read API.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "metrics/labels.h"
#include "metrics/model.h"
#include "metrics/symbols.h"
#include "tsdb/chunk.h"

namespace ceems::tsdb {

using common::TimestampMs;
using metrics::InternedLabels;
using metrics::LabelMatcher;
using metrics::Labels;

// Anything the PromQL engine can query.
class Queryable {
 public:
  virtual ~Queryable() = default;
  // All series matching every matcher, restricted to samples in
  // [min_t, max_t] inclusive. Views are cheap to copy (label handle plus
  // chunk refcounts); call samples()/materialize() only where the full
  // sample vector is actually consumed. Every returned view has at least
  // one sample in range.
  virtual std::vector<SeriesView> select(
      const std::vector<LabelMatcher>& matchers, TimestampMs min_t,
      TimestampMs max_t) const = 0;
  // Monotone change signature for query-result caching: one counter per
  // internal shard, bumped on every mutation of that shard. A cached
  // result is valid only while the signature it was computed under is
  // unchanged. Sources that cannot version themselves return {} and are
  // never cached.
  virtual std::vector<uint64_t> version_signature() const { return {}; }

  // Bucket widths (ms, ascending) of pre-aggregated resolution levels this
  // source maintains. Raw-only sources return {} and the resolution-aware
  // planner never engages for them.
  virtual std::vector<int64_t> agg_resolutions() const { return {}; }
  // Aggregate buckets at exactly `resolution_ms` for series matching every
  // matcher, restricted to buckets whose end timestamp lies in
  // [min_end, max_end] (both expected to be multiples of the resolution).
  // Returns nullopt unless the level covers that whole span exactly —
  // complete on the right (compaction cursor has passed max_end) and
  // unpurged on the left — so a present-but-bucketless series means "no
  // raw samples there", never "not aggregated yet". Views are sorted by
  // labels, the same order select() emits.
  virtual std::optional<std::vector<AggSeriesView>> select_agg(
      int64_t resolution_ms, const std::vector<LabelMatcher>& matchers,
      TimestampMs min_end, TimestampMs max_end) const {
    (void)resolution_ms;
    (void)matchers;
    (void)min_end;
    (void)max_end;
    return std::nullopt;
  }
};

struct StorageStats {
  std::size_t num_series = 0;
  std::size_t num_samples = 0;
  // Real per-store footprint: sealed chunk bytes + head capacities +
  // per-series interned symbol vectors.
  std::size_t approx_bytes = 0;
  // Footprint of the process-wide SymbolTable. Shared by every store in
  // the process, so it is reported separately: summing approx_bytes
  // across stores stays correct, and symbol_bytes must be added once at
  // most per process, not per store.
  std::size_t symbol_bytes = 0;
};

class Wal;  // tsdb/wal.h

class TimeSeriesStore final : public Queryable {
 public:
  // Lock stripes; power of two so shard_of() is a mask.
  static constexpr std::size_t kShardCount = 16;

  // Appends one sample; creates the series on first sight. Returns false
  // (and drops the sample) if it is older than the series' newest sample.
  bool append(const Labels& labels, TimestampMs t, double v);
  // Same, for already-interned labels (the scrape hot path): reuses the
  // precomputed fingerprint instead of re-hashing label strings.
  bool append(const InternedLabels& labels, TimestampMs t, double v);
  // Bulk append of scrape output, grouped by shard so each shard lock is
  // taken once per batch. Returns the number of samples accepted.
  std::size_t append_all(const std::vector<metrics::Sample>& samples);
  // Same, over non-owning sample refs — the allocation-free scrape hot
  // path: the caller's label pointers must stay valid for the call.
  std::size_t append_refs(const metrics::SampleRef* samples,
                          std::size_t count);

  // Attaches (or detaches, with nullptr) a write-ahead log: every
  // mutation is then logged and made durable (group commit) before it is
  // applied, under the WAL's shared commit lock. Call only while no
  // writer is active — at startup, or quiesced during crash recovery.
  void set_wal(std::shared_ptr<Wal> wal);
  Wal* wal() const { return wal_.load(std::memory_order_acquire); }

  std::vector<SeriesView> select(const std::vector<LabelMatcher>& matchers,
                                 TimestampMs min_t,
                                 TimestampMs max_t) const override;

  std::vector<uint64_t> version_signature() const override;

  // Label values seen for a name (for API /api/v1/label/<n>/values).
  std::vector<std::string> label_values(const std::string& label_name) const;

  // Drops samples older than `cutoff` from all series; removes series that
  // become empty. Returns the number of samples dropped.
  std::size_t purge_before(TimestampMs cutoff);

  // Deletes whole matching series (the API server's cardinality cleanup of
  // §II-C: metrics of jobs shorter than the cutoff are removed wholesale).
  std::size_t delete_series(const std::vector<LabelMatcher>& matchers);

  // Drops every series and sample, bumping shard versions so cached
  // query results invalidate. The WAL attachment is untouched; crash
  // recovery detaches first, clears, then replays. In-place reset means
  // every holder of this StorePtr (scraper, rules, API) sees the
  // recovered state without re-wiring.
  void clear();

  StorageStats stats() const;

  // Newest sample timestamp across all series (sync cursor for long-term
  // replication), or nullopt when empty.
  std::optional<TimestampMs> max_time() const;

  // Series with samples at/after `since`, materialised (replication pull).
  std::vector<Series> series_since(TimestampMs since) const;

  // Durability: writes a compact binary snapshot of every series (the
  // Prometheus block-on-local-disk analogue of Fig. 1). Sealed chunks are
  // written compressed as-is. Holds every shard lock for the duration, so
  // the snapshot is a consistent cut. Returns false on IO error.
  bool snapshot_to(const std::string& path) const;
  // Loads a snapshot into this (empty or compatible) store. Reads both the
  // current chunked format ("CEEMSTSDB2") and the legacy raw-sample format
  // ("CEEMSTSDB1"); restoring into an empty store adopts sealed chunks
  // without re-encoding. Returns samples restored, or nullopt when the
  // file is missing, truncated, or corrupt (every chunk is decode-verified
  // against its header). A nullopt return leaves the store unmodified:
  // the whole snapshot is parsed and validated into scratch structures
  // before any series is created or appended to.
  std::optional<std::size_t> restore_from(const std::string& path);

  // Same snapshot/restore over in-memory bytes — the WAL checkpoint path
  // (tsdb/wal.h) wraps these in its atomically-installed snapshot file.
  std::string snapshot_bytes() const;
  std::optional<std::size_t> restore_from_bytes(std::string_view bytes);

  static std::size_t shard_of(uint64_t fingerprint) {
    return static_cast<std::size_t>(fingerprint) & (kShardCount - 1);
  }

 private:
  struct StoredSeries {
    InternedLabels ilabels;
    // Materialised once at series creation; copied into views so readers
    // never touch the symbol table after the shard lock drops.
    Labels labels;
    ChunkedSeries data;
  };

  struct Shard {
    mutable std::shared_mutex mu;
    // Series keyed by a shard-local id, NOT by fingerprint: ids are dense
    // and collision-free by construction.
    std::unordered_map<uint64_t, StoredSeries> series;
    // Fingerprint → chain of series ids. Nearly always one entry; lookup
    // verifies label equality against each chained id.
    std::unordered_map<uint64_t, std::vector<uint64_t>> by_fp;
    // Inverted index over interned symbols: name id → value id → series.
    std::map<uint32_t, std::map<uint32_t, std::set<uint64_t>>> index;
    uint64_t next_series_id = 1;
    std::size_t num_samples = 0;
    // Bumped on every mutation; read lock-free by version_signature().
    std::atomic<uint64_t> version{0};
  };

  // Finds the series for `labels` via the fingerprint chain, verifying
  // label equality. Caller holds at least a shared lock.
  static const StoredSeries* find_series_locked(const Shard& shard,
                                                const InternedLabels& labels);
  // Same, creating the series (and its index entries) when absent. Caller
  // holds the exclusive lock.
  StoredSeries& get_or_create_locked(Shard& shard,
                                     const InternedLabels& labels);
  // Appends into `shard`; caller holds the shard's exclusive lock.
  bool append_locked(Shard& shard, const InternedLabels& labels, TimestampMs t,
                     double v);
  // Removes one series and its index/chain entries. Caller holds the
  // exclusive lock; does not touch num_samples.
  static void erase_series_locked(Shard& shard, uint64_t id);

  // Returns ids of series in `shard` matching all matchers. Caller holds
  // at least a shared lock on the shard.
  static std::vector<uint64_t> match_ids(
      const Shard& shard, const std::vector<LabelMatcher>& matchers);

  // Shard-bucketed apply without WAL logging (append_refs calls it after
  // the batch is durable; WAL replay reaches it through append_refs on a
  // store with no WAL attached).
  std::size_t apply_refs(const metrics::SampleRef* samples,
                         std::size_t count);

  bool snapshot_stream(std::ostream& out) const;
  std::optional<std::size_t> restore_stream(std::istream& in);

  std::array<Shard, kShardCount> shards_;

  // Owner keeps the Wal alive; the raw pointer is what the hot path
  // loads (one relaxed-ish atomic read per batch, no refcount traffic).
  std::shared_ptr<Wal> wal_owner_;
  std::atomic<Wal*> wal_{nullptr};
};

using StorePtr = std::shared_ptr<TimeSeriesStore>;

}  // namespace ceems::tsdb
