#include "metrics/regex_cache.h"

#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>

namespace ceems::metrics {

namespace {

// Bounded enough for every live dashboard/rule pattern, small enough that a
// hostile stream of unique patterns stays O(capacity) memory.
constexpr std::size_t kCapacity = 128;

// The cache is lock-striped: concurrent query threads hitting *different*
// patterns take different mutexes, so the hot lookup path scales with
// threads instead of serializing on one process-wide lock. Each stripe is
// an independent LRU over its share of the capacity; a pattern lives in
// exactly one stripe (keyed by its hash), so the semantics per pattern are
// identical to the old single-lock cache.
constexpr std::size_t kStripes = 8;
static_assert(kCapacity % kStripes == 0);

struct Stripe {
  std::mutex mu;
  // Most-recently-used at the front.
  std::list<std::string> lru;
  struct Entry {
    std::shared_ptr<const std::regex> regex;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, Entry> entries;
  RegexCacheStats stats;
};

struct Cache {
  Stripe stripes[kStripes];
  Stripe& of(const std::string& pattern) {
    return stripes[std::hash<std::string>{}(pattern) % kStripes];
  }
};

Cache& cache() {
  static Cache* instance = new Cache();  // intentionally leaked
  return *instance;
}

}  // namespace

std::shared_ptr<const std::regex> compiled_anchored_regex(
    const std::string& pattern) {
  Stripe& s = cache().of(pattern);
  {
    std::lock_guard lock(s.mu);
    auto it = s.entries.find(pattern);
    if (it != s.entries.end()) {
      ++s.stats.hits;
      s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
      return it->second.regex;
    }
  }
  // Compile outside the lock: regex construction is the expensive part and
  // may throw std::regex_error, which must reach the caller uncached.
  auto compiled = std::make_shared<const std::regex>(
      "^(?:" + pattern + ")$", std::regex::ECMAScript);
  std::lock_guard lock(s.mu);
  auto it = s.entries.find(pattern);
  if (it != s.entries.end()) {
    // Raced with another thread compiling the same pattern; keep theirs.
    ++s.stats.hits;
    s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
    return it->second.regex;
  }
  ++s.stats.misses;
  if (s.entries.size() >= kCapacity / kStripes) {
    ++s.stats.evictions;
    s.entries.erase(s.lru.back());
    s.lru.pop_back();
  }
  s.lru.push_front(pattern);
  s.entries.emplace(pattern, Stripe::Entry{compiled, s.lru.begin()});
  return compiled;
}

RegexCacheStats regex_cache_stats() {
  Cache& c = cache();
  RegexCacheStats total;
  for (Stripe& s : c.stripes) {
    std::lock_guard lock(s.mu);
    total.hits += s.stats.hits;
    total.misses += s.stats.misses;
    total.evictions += s.stats.evictions;
  }
  return total;
}

}  // namespace ceems::metrics
