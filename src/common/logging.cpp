#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ceems::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_out_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (level < log_level()) return;
  std::lock_guard lock(g_out_mu);
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(),
               message.c_str());
}

}  // namespace ceems::common
