# Empty dependencies file for bench_power_sources.
# This may be replaced when dependencies are built.
