// Emission-factor providers (§II-A.c). The factor — grams of CO2-equivalent
// per kWh — depends on the momentary energy mix, so CEEMS combines a static
// historical source (OWID) with real-time sources (RTE for France,
// Electricity Maps for many zones). Real-time providers are simulated with
// deterministic diurnal/seasonal mix models since the live APIs are not
// reachable offline (DESIGN.md substitution table); the chain/caching/rate-
// limit code paths are the real thing.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"

namespace ceems::emissions {

struct EmissionFactor {
  double gco2_per_kwh = 0;
  std::string provider;   // "owid", "rte", "emaps"
  bool realtime = false;  // static yearly average vs live mix
};

class Provider {
 public:
  virtual ~Provider() = default;
  virtual std::string name() const = 0;
  // Factor for an ISO-3166 alpha-2 zone ("FR", "DE", ...) at time t.
  // nullopt when the zone is unknown or the provider is unavailable
  // (rate-limited, simulated outage).
  virtual std::optional<EmissionFactor> factor(
      const std::string& zone, common::TimestampMs t_ms) = 0;
};

using ProviderPtr = std::shared_ptr<Provider>;

// First-available-wins chain, real-time providers first, OWID as fallback —
// the composition the paper describes.
class ProviderChain final : public Provider {
 public:
  explicit ProviderChain(std::vector<ProviderPtr> providers)
      : providers_(std::move(providers)) {}
  std::string name() const override { return "chain"; }
  std::optional<EmissionFactor> factor(const std::string& zone,
                                       common::TimestampMs t_ms) override;

 private:
  std::vector<ProviderPtr> providers_;
};

// grams CO2e for `joules` at `gco2_per_kwh`.
double emissions_grams(double joules, double gco2_per_kwh);

}  // namespace ceems::emissions
