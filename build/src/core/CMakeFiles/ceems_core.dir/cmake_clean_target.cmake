file(REMOVE_RECURSE
  "libceems_core.a"
)
