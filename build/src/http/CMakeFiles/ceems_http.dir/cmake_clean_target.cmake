file(REMOVE_RECURSE
  "libceems_http.a"
)
