// Batch-job model for the SLURM-like resource manager simulator. Field
// names mirror slurmdbd's accounting records because the CEEMS API server
// consumes exactly that tuple (§II-B.b: "fetches information from ... the
// underlying resource manager to get a list of compute workloads").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "node/node_sim.h"

namespace ceems::slurm {

enum class JobState {
  kPending,
  kRunning,
  kCompleted,
  kFailed,
  kTimeout,
  kCancelled,
};

std::string_view job_state_name(JobState state);

// What a user submits.
struct JobRequest {
  std::string name;
  std::string user;
  std::string account;    // project in CEEMS terminology
  std::string partition;  // "cpu_p1", "gpu_p13", ...
  int num_nodes = 1;
  int cpus_per_node = 1;
  int64_t memory_per_node_bytes = 4LL << 30;
  int gpus_per_node = 0;
  int64_t walltime_limit_ms = common::kMillisPerHour;

  // Simulation-only fields, invisible to the scheduler: how long the job
  // really runs and how it behaves while running.
  int64_t true_duration_ms = 30 * common::kMillisPerMinute;
  double failure_probability = 0.02;
  node::WorkloadBehavior behavior;
};

// Full accounting record, updated through the job's lifetime.
struct Job {
  int64_t job_id = 0;
  JobRequest request;
  JobState state = JobState::kPending;
  common::TimestampMs submit_time_ms = 0;
  common::TimestampMs start_time_ms = 0;  // 0 until started
  common::TimestampMs end_time_ms = 0;    // 0 until finished
  std::vector<std::string> hostnames;
  // GPU ordinals bound per node, parallel to `hostnames`. Recorded because
  // (§II-A.d) the binding is not recoverable post-mortem from the GPU
  // telemetry itself — CEEMS must capture it while the job runs.
  std::vector<std::vector<int>> gpu_ordinals_per_node;
  int exit_code = 0;

  int64_t elapsed_ms(common::TimestampMs now) const {
    if (start_time_ms == 0) return 0;
    return (end_time_ms != 0 ? end_time_ms : now) - start_time_ms;
  }
  bool finished() const {
    return state != JobState::kPending && state != JobState::kRunning;
  }
};

}  // namespace ceems::slurm
