#include "slurm/workload_gen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ceems::slurm {

WorkloadGenerator::WorkloadGenerator(WorkloadGenConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  if (config_.partitions.empty())
    throw std::invalid_argument("workload generator needs partitions");
  // Zipf-like user activity: weight(i) = 1 / (i+1)^s, as a CDF.
  double acc = 0;
  for (int i = 0; i < config_.num_users; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1),
                          config_.user_zipf_exponent);
    user_weights_cdf_.push_back(acc);
  }
  for (const auto& mix : config_.partitions)
    total_partition_weight_ += mix.weight;
}

std::string WorkloadGenerator::user_name(int index) const {
  return "user" + std::to_string(index);
}

std::string WorkloadGenerator::project_of(const std::string& user) const {
  // Stable user→project assignment: hash of the user name.
  uint64_t hash = 1469598103934665603ULL;
  for (char c : user) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return "prj" +
         std::to_string(hash % static_cast<uint64_t>(
                                   std::max(1, config_.num_projects)));
}

int WorkloadGenerator::sample_user_index() {
  double target = rng_.next_double() * user_weights_cdf_.back();
  auto it = std::lower_bound(user_weights_cdf_.begin(),
                             user_weights_cdf_.end(), target);
  return static_cast<int>(it - user_weights_cdf_.begin());
}

std::vector<JobRequest> WorkloadGenerator::arrivals(int64_t dt_ms) {
  double expected =
      config_.jobs_per_day * static_cast<double>(dt_ms) /
      static_cast<double>(common::kMillisPerDay);
  // Poisson sampling via inter-arrival accumulation (good enough for
  // expected counts well below ~50 per step).
  std::vector<JobRequest> out;
  double remaining = expected;
  while (remaining > 0) {
    if (remaining >= 1.0 || rng_.chance(remaining)) {
      out.push_back(sample());
    }
    remaining -= 1.0;
  }
  return out;
}

JobRequest WorkloadGenerator::sample() {
  // Pick a partition by weight.
  double target = rng_.next_double() * total_partition_weight_;
  const PartitionMix* mix = &config_.partitions.back();
  double acc = 0;
  for (const auto& candidate : config_.partitions) {
    acc += candidate.weight;
    if (target <= acc) {
      mix = &candidate;
      break;
    }
  }

  JobRequest request;
  int user_index = sample_user_index();
  request.user = user_name(user_index);
  request.account = project_of(request.user);
  request.partition = mix->partition;

  // Duration: lognormal-ish — median ~45 min, heavy right tail, capped.
  double log_duration = rng_.normal(std::log(45.0 * 60.0), 1.2);
  double duration_sec = std::clamp(std::exp(log_duration), 60.0,
                                   20.0 * 3600.0);
  request.true_duration_ms = static_cast<int64_t>(duration_sec * 1000.0);
  request.walltime_limit_ms = static_cast<int64_t>(
      static_cast<double>(request.true_duration_ms) * rng_.uniform(1.1, 3.0));
  request.failure_probability = 0.03;

  node::WorkloadBehavior behavior;
  if (mix->has_gpus) {
    // GPU jobs: single node, 1..node_gpus GPUs, a few CPUs per GPU.
    request.name = "gpu_train";
    request.num_nodes = 1;
    request.gpus_per_node = static_cast<int>(rng_.uniform_int(
        1, std::max(1, mix->node_gpus)));
    request.cpus_per_node = std::min(
        mix->node_cpus, request.gpus_per_node *
                            static_cast<int>(rng_.uniform_int(4, 10)));
    request.memory_per_node_bytes =
        static_cast<int64_t>(rng_.uniform(32, 128)) * (1LL << 30);
    behavior.cpu_util_mean = rng_.uniform(0.2, 0.6);  // CPU feeds the GPU
    behavior.gpu_util_mean = rng_.uniform(0.55, 0.98);
    behavior.gpu_memory_fraction = rng_.uniform(0.3, 0.95);
    behavior.memory_target_fraction = rng_.uniform(0.3, 0.8);
  } else {
    bool large = rng_.chance(0.25) && mix->max_nodes_per_job >= 2;
    if (large) {
      request.name = "cpu_large";
      request.num_nodes = static_cast<int>(
          rng_.uniform_int(2, std::max(2, mix->max_nodes_per_job)));
      request.cpus_per_node = mix->node_cpus;  // exclusive nodes
      request.memory_per_node_bytes = mix->node_memory_bytes * 3 / 4;
      behavior.cpu_util_mean = rng_.uniform(0.8, 0.98);
    } else {
      request.name = "cpu_small";
      request.num_nodes = 1;
      request.cpus_per_node = static_cast<int>(rng_.uniform_int(
          1, std::max(1, mix->node_cpus / 2)));
      request.memory_per_node_bytes =
          static_cast<int64_t>(rng_.uniform(2, 48)) * (1LL << 30);
      behavior.cpu_util_mean = rng_.uniform(0.5, 0.95);
    }
    behavior.memory_target_fraction = rng_.uniform(0.3, 0.9);
  }
  behavior.cpu_util_jitter = 0.05;
  behavior.memory_activity = rng_.uniform(0.2, 0.9);
  behavior.memory_ramp_seconds = rng_.uniform(30, 600);
  if (rng_.chance(0.1)) {  // IO-heavy minority
    behavior.io_read_bytes_per_sec = rng_.uniform(10e6, 400e6);
    behavior.io_write_bytes_per_sec = rng_.uniform(5e6, 200e6);
  }
  // Network and microarchitectural profile (for the eBPF/perf collectors).
  if (request.num_nodes > 1) {
    // Multi-node jobs exchange MPI traffic.
    behavior.net_tx_bytes_per_sec = rng_.uniform(50e6, 600e6);
    behavior.net_rx_bytes_per_sec = behavior.net_tx_bytes_per_sec;
  } else if (mix->has_gpus) {
    // Data loading / checkpointing.
    behavior.net_tx_bytes_per_sec = rng_.uniform(1e6, 30e6);
    behavior.net_rx_bytes_per_sec = rng_.uniform(10e6, 120e6);
  } else if (rng_.chance(0.3)) {
    behavior.net_tx_bytes_per_sec = rng_.uniform(0.1e6, 20e6);
    behavior.net_rx_bytes_per_sec = rng_.uniform(0.1e6, 20e6);
  }
  behavior.instructions_per_cpu_sec = rng_.uniform(1.0e9, 3.5e9);
  behavior.flop_fraction =
      mix->has_gpus ? rng_.uniform(0.05, 0.2) : rng_.uniform(0.1, 0.5);
  behavior.cache_miss_rate = rng_.uniform(0.001, 0.03);
  request.behavior = behavior;
  return request;
}

}  // namespace ceems::slurm
