file(REMOVE_RECURSE
  "libceems_lb.a"
)
