// cgroup collector: walks the resource manager's cgroup scope and emits
// per-compute-unit CPU/memory/IO accounting (§II-A.a). Metric names follow
// the CEEMS exporter's scheme: ceems_compute_unit_*.
#pragma once

#include "exporter/collector.h"
#include "simfs/cgroup.h"

namespace ceems::exporter {

class CgroupCollector final : public Collector {
 public:
  // `scope` is the cgroup directory holding one child per workload
  // (e.g. /sys/fs/cgroup/system.slice/slurmstepd.scope); child names are
  // "<prefix><uuid>", "job_" for SLURM.
  CgroupCollector(simfs::FsPtr fs, std::string scope,
                  std::string child_prefix = "job_",
                  std::string manager = "slurm");

  std::string name() const override { return "cgroup"; }
  std::vector<metrics::MetricFamily> collect(common::TimestampMs now) override;

 private:
  simfs::FsPtr fs_;
  std::string scope_;
  std::string child_prefix_;
  std::string manager_;
};

}  // namespace ceems::exporter
