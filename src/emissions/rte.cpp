#include "emissions/rte.h"

#include <cmath>

namespace ceems::emissions {

double RteProvider::model_gco2_per_kwh(common::TimestampMs t_ms) {
  // Quantize to the 15-minute publication grid.
  int64_t slot = t_ms / (15 * common::kMillisPerMinute);
  double t_hours = static_cast<double>(slot) * 0.25;

  double hour_of_day = std::fmod(t_hours, 24.0);
  double day_of_year = std::fmod(t_hours / 24.0, 365.0);

  // Baseline ~35 g (nuclear+hydro). Morning (08h) and evening (19h) peaks
  // bring gas online; winter adds load.
  double base = 35.0;
  double morning_peak =
      18.0 * std::exp(-std::pow(hour_of_day - 8.0, 2) / 8.0);
  double evening_peak =
      26.0 * std::exp(-std::pow(hour_of_day - 19.0, 2) / 6.0);
  double seasonal =
      14.0 * std::cos(2.0 * M_PI * (day_of_year - 15.0) / 365.0);
  // Deterministic "weather" wobble from the slot index.
  double wobble = 6.0 * std::sin(static_cast<double>(slot % 97) * 0.261);
  double value = base + morning_peak + evening_peak + seasonal + wobble;
  return std::max(15.0, value);
}

std::optional<EmissionFactor> RteProvider::factor(const std::string& zone,
                                                  common::TimestampMs t_ms) {
  if (zone != "FR") return std::nullopt;  // RTE only covers France
  if (availability_ < 1.0) {
    // Deterministic outage windows based on the 15-minute slot.
    uint64_t slot = static_cast<uint64_t>(t_ms / (15 * common::kMillisPerMinute));
    uint64_t hash = slot * 0x9E3779B97F4A7C15ULL;
    double u = static_cast<double>(hash >> 11) * 0x1.0p-53;
    if (u > availability_) return std::nullopt;
  }
  return EmissionFactor{model_gco2_per_kwh(t_ms), "rte", /*realtime=*/true};
}

}  // namespace ceems::emissions
