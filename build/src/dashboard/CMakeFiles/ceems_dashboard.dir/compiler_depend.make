# Empty compiler generated dependencies file for ceems_dashboard.
# This may be replaced when dependencies are built.
