#include "http/message.h"

#include <algorithm>
#include <cctype>

#include "common/strutil.h"

namespace ceems::http {

bool CaseInsensitiveLess::operator()(const std::string& a,
                                     const std::string& b) const {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(), [](char x, char y) {
        return std::tolower(static_cast<unsigned char>(x)) <
               std::tolower(static_cast<unsigned char>(y));
      });
}

std::string Request::path() const {
  std::size_t q = target.find('?');
  return url_decode(q == std::string::npos ? target : target.substr(0, q));
}

std::map<std::string, std::string> Request::query_params() const {
  std::map<std::string, std::string> params;
  std::size_t q = target.find('?');
  if (q == std::string::npos) return params;
  for (const auto& pair : common::split(target.substr(q + 1), '&')) {
    if (pair.empty()) continue;
    std::size_t eq = pair.find('=');
    std::string key = url_decode(eq == std::string::npos ? pair : pair.substr(0, eq));
    std::string value = eq == std::string::npos ? "" : url_decode(pair.substr(eq + 1));
    params.emplace(std::move(key), std::move(value));  // first wins
  }
  return params;
}

std::vector<std::string> Request::query_param_all(const std::string& key) const {
  std::vector<std::string> values;
  std::size_t q = target.find('?');
  if (q == std::string::npos) return values;
  for (const auto& pair : common::split(target.substr(q + 1), '&')) {
    std::size_t eq = pair.find('=');
    std::string k = url_decode(eq == std::string::npos ? pair : pair.substr(0, eq));
    if (k == key)
      values.push_back(eq == std::string::npos ? "" : url_decode(pair.substr(eq + 1)));
  }
  return values;
}

std::optional<std::string> Request::header(const std::string& name) const {
  auto it = headers.find(name);
  if (it == headers.end()) return std::nullopt;
  return it->second;
}

Response Response::text(int status, std::string body, std::string content_type) {
  Response response;
  response.status = status;
  response.headers["Content-Type"] = std::move(content_type);
  response.body = std::move(body);
  return response;
}

Response Response::json(int status, std::string body) {
  return text(status, std::move(body), "application/json");
}

Response Response::not_found(const std::string& what) {
  return json(404, "{\"status\":\"error\",\"error\":\"" + what + "\"}");
}

Response Response::bad_request(const std::string& what) {
  return json(400, "{\"status\":\"error\",\"error\":\"" + what + "\"}");
}

Response Response::unauthorized(const std::string& realm) {
  Response response = text(401, "unauthorized\n");
  response.headers["WWW-Authenticate"] = "Basic realm=\"" + realm + "\"";
  return response;
}

Response Response::forbidden(const std::string& what) {
  return json(403, "{\"status\":\"error\",\"error\":\"" + what + "\"}");
}

Response Response::internal_error(const std::string& what) {
  return json(500, "{\"status\":\"error\",\"error\":\"" + what + "\"}");
}

std::string status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string url_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '%' && i + 2 < text.size()) {
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      int hi = hex(text[i + 1]), lo = hex(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    if (c == '+') {
      out += ' ';
      continue;
    }
    out += c;
  }
  return out;
}

std::string url_encode(std::string_view text) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    bool unreserved = std::isalnum(static_cast<unsigned char>(c)) ||
                      c == '-' || c == '_' || c == '.' || c == '~';
    if (unreserved) {
      out += c;
    } else {
      out += '%';
      out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
      out += hex[static_cast<unsigned char>(c) & 0xF];
    }
  }
  return out;
}

namespace {
constexpr char kBase64Chars[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
}  // namespace

std::string base64_encode(std::string_view data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 2 < data.size()) {
    unsigned n = (static_cast<unsigned char>(data[i]) << 16) |
                 (static_cast<unsigned char>(data[i + 1]) << 8) |
                 static_cast<unsigned char>(data[i + 2]);
    out += kBase64Chars[(n >> 18) & 63];
    out += kBase64Chars[(n >> 12) & 63];
    out += kBase64Chars[(n >> 6) & 63];
    out += kBase64Chars[n & 63];
    i += 3;
  }
  if (i + 1 == data.size()) {
    unsigned n = static_cast<unsigned char>(data[i]) << 16;
    out += kBase64Chars[(n >> 18) & 63];
    out += kBase64Chars[(n >> 12) & 63];
    out += "==";
  } else if (i + 2 == data.size()) {
    unsigned n = (static_cast<unsigned char>(data[i]) << 16) |
                 (static_cast<unsigned char>(data[i + 1]) << 8);
    out += kBase64Chars[(n >> 18) & 63];
    out += kBase64Chars[(n >> 12) & 63];
    out += kBase64Chars[(n >> 6) & 63];
    out += '=';
  }
  return out;
}

std::optional<std::string> base64_decode(std::string_view text) {
  auto value_of = [](char c) -> int {
    if (c >= 'A' && c <= 'Z') return c - 'A';
    if (c >= 'a' && c <= 'z') return c - 'a' + 26;
    if (c >= '0' && c <= '9') return c - '0' + 52;
    if (c == '+') return 62;
    if (c == '/') return 63;
    return -1;
  };
  std::string out;
  int buffer = 0, bits = 0;
  for (char c : text) {
    if (c == '=') break;
    int v = value_of(c);
    if (v < 0) return std::nullopt;
    buffer = (buffer << 6) | v;
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out += static_cast<char>((buffer >> bits) & 0xFF);
    }
  }
  return out;
}

std::string basic_auth_header(const std::string& user,
                              const std::string& password) {
  return "Basic " + base64_encode(user + ":" + password);
}

std::optional<std::pair<std::string, std::string>> decode_basic_auth(
    const std::string& header_value) {
  if (!common::starts_with(header_value, "Basic ")) return std::nullopt;
  auto decoded = base64_decode(common::trim(
      std::string_view(header_value).substr(6)));
  if (!decoded) return std::nullopt;
  std::size_t colon = decoded->find(':');
  if (colon == std::string::npos) return std::nullopt;
  return std::make_pair(decoded->substr(0, colon), decoded->substr(colon + 1));
}

}  // namespace ceems::http
