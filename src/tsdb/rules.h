// Recording rules — the extensibility mechanism the paper builds its whole
// energy-estimation story on (§I, §III-A): operators express per-node-group
// power estimation (Eq. 1 among them) as PromQL recording rules rather
// than code. The engine evaluates rule groups against the store and writes
// the results back as new series named by `record`.
//
// Rules within a group are evaluated in order and see the results of
// earlier rules in the same evaluation (Prometheus semantics), which lets
// Eq. 1 be decomposed into named sub-expressions.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "tsdb/promql_eval.h"
#include "tsdb/storage.h"

namespace ceems::tsdb {

struct RecordingRule {
  std::string record;            // output metric name
  std::string expr;              // PromQL text
  std::vector<std::pair<std::string, std::string>> static_labels;
  promql::ExprPtr parsed;        // filled by RuleEngine
};

// Alerting rule: fires while `expr` returns a non-empty vector (after a
// comparison filter, as in Prometheus). A `for` duration keeps the alert
// pending until the condition has held continuously that long.
struct AlertingRule {
  std::string alert;  // alert name
  std::string expr;
  int64_t for_ms = 0;
  std::vector<std::pair<std::string, std::string>> static_labels;
  promql::ExprPtr parsed;
};

enum class AlertState { kPending, kFiring };

struct ActiveAlert {
  std::string name;
  Labels labels;        // series labels + alertname + static labels
  AlertState state = AlertState::kPending;
  common::TimestampMs active_since_ms = 0;
  double value = 0;     // last value of the triggering sample
};

struct RuleGroup {
  std::string name;
  int64_t interval_ms = 30 * common::kMillisPerSecond;
  std::vector<RecordingRule> rules;
  std::vector<AlertingRule> alerts;
};

struct RuleEvalStats {
  uint64_t rules_evaluated = 0;
  uint64_t samples_written = 0;
  uint64_t rule_failures = 0;
  uint64_t alerts_firing = 0;
  uint64_t alerts_pending = 0;
};

class RuleEngine {
 public:
  explicit RuleEngine(StorePtr store, promql::EngineOptions options = {});

  // Parses every rule expression up front; throws promql::ParseError on
  // invalid rules (fail fast at config load, like promtool check rules).
  void add_group(RuleGroup group);
  std::size_t group_count() const {
    std::lock_guard lock(eval_mu_);
    return groups_.size();
  }

  // Evaluates every group due at `t` (interval grid) and writes results.
  RuleEvalStats evaluate_due(common::TimestampMs t);
  // Evaluates everything regardless of interval (deterministic pipelines).
  RuleEvalStats evaluate_all(common::TimestampMs t);

  // Alerts currently pending or firing. Firing alerts are also written to
  // the store as ALERTS{alertname=...,alertstate=...} 1 series.
  std::vector<ActiveAlert> active_alerts() const;

 private:
  RuleEvalStats evaluate_group(RuleGroup& group, common::TimestampMs t);
  void evaluate_alert(const AlertingRule& rule, common::TimestampMs t,
                      RuleEvalStats& stats);

  StorePtr store_;
  promql::Engine engine_;
  // Serialises rule evaluation against group registration and alert
  // snapshots: the evaluation loop runs on a timer thread while
  // active_alerts() is read from HTTP handlers.
  mutable std::mutex eval_mu_;
  std::vector<RuleGroup> groups_;
  std::vector<common::TimestampMs> last_eval_;
  // Key: alertname fingerprint ^ labels fingerprint.
  std::map<uint64_t, ActiveAlert> active_;
};

// Parses rule groups from the `groups:` section of a Prometheus-style rule
// file already loaded as a Json/YAML tree:
//   groups:
//     - name: energy
//       interval: 30s
//       rules:
//         - record: ceems_job_power_watts
//           expr: ...
//           labels: { group: intel }
std::vector<RuleGroup> parse_rule_groups(const common::Json& root);

}  // namespace ceems::tsdb
