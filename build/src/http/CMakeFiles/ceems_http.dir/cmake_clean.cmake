file(REMOVE_RECURSE
  "CMakeFiles/ceems_http.dir/client.cpp.o"
  "CMakeFiles/ceems_http.dir/client.cpp.o.d"
  "CMakeFiles/ceems_http.dir/message.cpp.o"
  "CMakeFiles/ceems_http.dir/message.cpp.o.d"
  "CMakeFiles/ceems_http.dir/server.cpp.o"
  "CMakeFiles/ceems_http.dir/server.cpp.o.d"
  "libceems_http.a"
  "libceems_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceems_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
