#include "core/rules_library.h"

#include "common/strutil.h"

namespace ceems::core {

using tsdb::RecordingRule;
using tsdb::RuleGroup;

namespace {

RecordingRule rule(std::string record, std::string expr) {
  RecordingRule out;
  out.record = std::move(record);
  out.expr = std::move(expr);
  return out;
}

}  // namespace

std::vector<tsdb::RuleGroup> jean_zay_rule_groups(
    const std::string& w, const std::string& emission_provider) {
  std::vector<RuleGroup> groups;

  // ---- Instance-level building blocks (all node groups) ----
  RuleGroup instance;
  instance.name = "ceems-instance";
  instance.rules = {
      rule("instance:rapl_cpu_watts",
           "sum by (hostname, nodegroup) (rate(ceems_rapl_package_joules_total[" +
               w + "]))"),
      rule("instance:rapl_dram_watts",
           "sum by (hostname, nodegroup) (rate(ceems_rapl_dram_joules_total[" +
               w + "]))"),
      rule("instance:cpu_busy_rate",
           "sum by (hostname, nodegroup) (rate(node_cpu_seconds_total{"
           "mode!=\"idle\",mode!=\"iowait\"}[" + w + "]))"),
      rule("instance:ipmi_watts",
           "sum by (hostname, nodegroup) (ceems_ipmi_dcmi_current_watts)"),
      rule("instance:gpu_watts",
           "sum by (hostname, nodegroup) (DCGM_FI_DEV_POWER_USAGE)"),
      rule("instance:memory_used_bytes",
           "sum by (hostname, nodegroup) (node_memory_MemTotal_bytes) - "
           "sum by (hostname, nodegroup) (node_memory_MemAvailable_bytes)"),
      rule("instance:njobs",
           "sum by (hostname, nodegroup) (ceems_compute_units)"),
      rule("uuid:cpu_rate",
           "sum by (hostname, nodegroup, uuid) "
           "(rate(ceems_compute_unit_cpu_usage_seconds_total[" + w + "]))"),
      rule("uuid:memory_bytes",
           "sum by (hostname, nodegroup, uuid) "
           "(ceems_compute_unit_memory_current_bytes)"),
      // Constant-1 per compute unit, used to fan instance-level terms out
      // to units (the equal network split of Eq. 1's last term).
      rule("uuid:ones", "uuid:memory_bytes * 0 + 1"),
  };
  groups.push_back(instance);

  // ---- Per-node-group power budgets (§III-A customization) ----
  // Intel CPU nodes: full Eq. (1) — split 0.9·P_ipmi between CPU and DRAM
  // by the RAPL counter ratio.
  RuleGroup intel;
  intel.name = "ceems-group-intel";
  intel.rules = {
      rule("instance:cpu_budget_watts",
           "0.9 * instance:ipmi_watts{nodegroup=\"intel-cpu\"} * "
           "(instance:rapl_cpu_watts{nodegroup=\"intel-cpu\"} / "
           "(instance:rapl_cpu_watts{nodegroup=\"intel-cpu\"} + "
           "instance:rapl_dram_watts{nodegroup=\"intel-cpu\"}))"),
      rule("instance:dram_budget_watts",
           "0.9 * instance:ipmi_watts{nodegroup=\"intel-cpu\"} * "
           "(instance:rapl_dram_watts{nodegroup=\"intel-cpu\"} / "
           "(instance:rapl_cpu_watts{nodegroup=\"intel-cpu\"} + "
           "instance:rapl_dram_watts{nodegroup=\"intel-cpu\"}))"),
  };
  groups.push_back(intel);

  // AMD CPU nodes: no DRAM RAPL domain — the whole budget follows CPU time.
  RuleGroup amd;
  amd.name = "ceems-group-amd";
  amd.rules = {
      rule("instance:cpu_budget_watts",
           "0.9 * instance:ipmi_watts{nodegroup=\"amd-cpu\"}"),
      rule("instance:dram_budget_watts",
           "0 * instance:ipmi_watts{nodegroup=\"amd-cpu\"}"),
  };
  groups.push_back(amd);

  // GPU servers whose BMC reading includes GPU power: subtract the DCGM
  // total first, then split the host remainder by RAPL (Intel hosts).
  RuleGroup gpu_incl;
  gpu_incl.name = "ceems-group-gpu-incl";
  gpu_incl.rules = {
      rule("instance:host_watts",
           "clamp_min(instance:ipmi_watts{nodegroup=\"gpu-incl\"} - "
           "instance:gpu_watts{nodegroup=\"gpu-incl\"}, 0)"),
      rule("instance:cpu_budget_watts",
           "0.9 * instance:host_watts{nodegroup=\"gpu-incl\"} * "
           "(instance:rapl_cpu_watts{nodegroup=\"gpu-incl\"} / "
           "(instance:rapl_cpu_watts{nodegroup=\"gpu-incl\"} + "
           "instance:rapl_dram_watts{nodegroup=\"gpu-incl\"}))"),
      rule("instance:dram_budget_watts",
           "0.9 * instance:host_watts{nodegroup=\"gpu-incl\"} * "
           "(instance:rapl_dram_watts{nodegroup=\"gpu-incl\"} / "
           "(instance:rapl_cpu_watts{nodegroup=\"gpu-incl\"} + "
           "instance:rapl_dram_watts{nodegroup=\"gpu-incl\"}))"),
  };
  groups.push_back(gpu_incl);

  // GPU servers whose BMC reading excludes GPU power (AMD hosts, package
  // RAPL only): the BMC wattage is already GPU-free.
  RuleGroup gpu_excl;
  gpu_excl.name = "ceems-group-gpu-excl";
  gpu_excl.rules = {
      rule("instance:cpu_budget_watts",
           "0.9 * instance:ipmi_watts{nodegroup=\"gpu-excl\"}"),
      rule("instance:dram_budget_watts",
           "0 * instance:ipmi_watts{nodegroup=\"gpu-excl\"}"),
  };
  groups.push_back(gpu_excl);

  // ---- Per-unit attribution: Eq. (1) proper ----
  RuleGroup job;
  job.name = "ceems-job";
  job.rules = {
      // T_job / T_node and M_job / M_node shares. Clamped to [0,1]: right
      // after a job lands on an idle node the node-level rate can lag the
      // job-level one by a scrape, and unclamped ratios would explode.
      rule("uuid:cpu_share",
           "clamp(uuid:cpu_rate / on(hostname) group_left() "
           "clamp_min(instance:cpu_busy_rate, 0.001), 0, 1)"),
      rule("uuid:mem_share",
           "clamp(uuid:memory_bytes / on(hostname) group_left() "
           "clamp_min(instance:memory_used_bytes, 1), 0, 1)"),
      // First two terms of Eq. (1).
      rule("uuid:cpu_power_part",
           "uuid:cpu_share * on(hostname) group_left() "
           "instance:cpu_budget_watts"),
      rule("uuid:dram_power_part",
           "uuid:mem_share * on(hostname) group_left() "
           "instance:dram_budget_watts"),
      // Final term: 10% network budget split equally among the N_job units.
      rule("uuid:net_power_part",
           "uuid:ones * on(hostname) group_left() "
           "(0.1 * instance:ipmi_watts / clamp_min(instance:njobs, 1))"),
      rule("ceems_job_power_watts",
           "sum by (hostname, nodegroup, uuid) (uuid:cpu_power_part + "
           "uuid:dram_power_part + uuid:net_power_part)"),
  };
  groups.push_back(job);

  // ---- GPU power via the binding map (§II-A.d) ----
  RuleGroup gpu;
  gpu.name = "ceems-job-gpu";
  gpu.rules = {
      rule("uuid:gpu_power_watts",
           "ceems_compute_unit_gpu_index_flag * on(hostname, gpu_uuid) "
           "group_left() label_replace(DCGM_FI_DEV_POWER_USAGE, "
           "\"gpu_uuid\", \"$1\", \"UUID\", \"(.+)\")"),
      rule("ceems_job_gpu_power_watts",
           "sum by (hostname, nodegroup, uuid) (uuid:gpu_power_watts)"),
      rule("uuid:gpu_util_pct",
           "ceems_compute_unit_gpu_index_flag * on(hostname, gpu_uuid) "
           "group_left() label_replace(DCGM_FI_DEV_GPU_UTIL, "
           "\"gpu_uuid\", \"$1\", \"UUID\", \"(.+)\")"),
      rule("ceems_job_gpu_util",
           "avg by (hostname, nodegroup, uuid) (uuid:gpu_util_pct) / 100"),
      // AMD path: join on the device ordinal, convert µW → W.
      rule("uuid:amd_gpu_power_watts",
           "ceems_compute_unit_gpu_index_flag * on(hostname, index) "
           "group_left() (label_replace(amd_gpu_power, \"index\", \"$1\", "
           "\"gpu_id\", \"(.+)\") / 1000000)"),
      rule("ceems_job_gpu_power_watts",
           "sum by (hostname, nodegroup, uuid) (uuid:amd_gpu_power_watts)"),
  };
  groups.push_back(gpu);

  // ---- Emissions (§II-A.c): watts → gCO2e per hour ----
  RuleGroup emissions;
  emissions.name = "ceems-emissions";
  emissions.rules = {
      rule("uuid:total_power_watts",
           "ceems_job_power_watts + on(hostname, nodegroup, uuid) "
           "ceems_job_gpu_power_watts or ceems_job_power_watts"),
      rule("ceems_job_emissions_g_per_hour",
           "(uuid:total_power_watts / 1000) * on() group_left() "
           "(avg(ceems_emissions_gCo2_kWh{provider=\"" + emission_provider +
               "\"}))"),
  };
  groups.push_back(emissions);
  return groups;
}

std::vector<tsdb::RuleGroup> ebpf_network_rules(const std::string& w) {
  RuleGroup group;
  group.name = "ceems-job-net-ebpf";
  group.rules = {
      rule("uuid:net_rate",
           "sum by (hostname, nodegroup, uuid) "
           "(rate(ceems_compute_unit_network_tx_bytes_total[" + w + "])) + "
           "sum by (hostname, nodegroup, uuid) "
           "(rate(ceems_compute_unit_network_rx_bytes_total[" + w + "]))"),
      rule("instance:net_rate",
           "sum by (hostname, nodegroup) (uuid:net_rate)"),
      rule("uuid:net_share_ebpf",
           "clamp(uuid:net_rate / on(hostname) group_left() "
           "clamp_min(instance:net_rate, 1), 0, 1)"),
      rule("ceems_job_net_power_watts",
           "uuid:net_share_ebpf * on(hostname) group_left() "
           "(0.1 * instance:ipmi_watts)"),
      // Full Eq. (1) with the refined network term. Jobs with zero traffic
      // on a node with traffic get no network power (unlike equal split).
      rule("ceems_job_power_watts_netshare",
           "sum by (hostname, nodegroup, uuid) (uuid:cpu_power_part + "
           "uuid:dram_power_part + ceems_job_net_power_watts or "
           "uuid:cpu_power_part + uuid:dram_power_part)"),
  };
  return {group};
}

std::vector<tsdb::RuleGroup> ceems_alert_rules(
    double node_power_ceiling_watts) {
  using tsdb::AlertingRule;
  RuleGroup group;
  group.name = "ceems-alerts";

  AlertingRule node_down;
  node_down.alert = "CeemsExporterDown";
  node_down.expr = "up == 0";
  node_down.for_ms = 2 * common::kMillisPerMinute;
  node_down.static_labels = {{"severity", "critical"}};
  group.alerts.push_back(node_down);

  AlertingRule power_anomaly;
  power_anomaly.alert = "NodePowerAnomalous";
  power_anomaly.expr = "instance:ipmi_watts > " +
                       common::format_double(node_power_ceiling_watts);
  power_anomaly.for_ms = 5 * common::kMillisPerMinute;
  power_anomaly.static_labels = {{"severity", "warning"}};
  group.alerts.push_back(power_anomaly);

  AlertingRule emissions_stale;
  emissions_stale.alert = "EmissionFactorMissing";
  emissions_stale.expr = "absent(ceems_emissions_gCo2_kWh)";
  emissions_stale.for_ms = 10 * common::kMillisPerMinute;
  emissions_stale.static_labels = {{"severity", "warning"}};
  group.alerts.push_back(emissions_stale);

  AlertingRule slow_scrape;
  slow_scrape.alert = "ScrapeSlow";
  slow_scrape.expr = "scrape_duration_seconds > 5";
  slow_scrape.for_ms = 2 * common::kMillisPerMinute;
  slow_scrape.static_labels = {{"severity", "info"}};
  group.alerts.push_back(slow_scrape);
  return {group};
}

std::vector<tsdb::RuleGroup> long_range_report_rules(
    const std::string& aligned_window) {
  int64_t window_ms =
      common::parse_duration_ms(aligned_window).value_or(common::kMillisPerHour);
  double window_sec = static_cast<double>(window_ms) / 1000.0;
  RuleGroup group;
  group.name = "ceems-longrange-report";
  // Evaluate once per window so consecutive reports tile the timeline.
  group.interval_ms = window_ms;
  group.rules = {
      rule("report:job_mean_power_watts",
           "avg_over_time(ceems_job_power_watts[" + aligned_window + "])"),
      rule("report:job_peak_power_watts",
           "max_over_time(ceems_job_power_watts[" + aligned_window + "])"),
      rule("report:job_energy_joules",
           "avg_over_time(ceems_job_power_watts[" + aligned_window + "]) * " +
               common::format_double(window_sec)),
      rule("report:node_energy_joules",
           "sum by (hostname, nodegroup) "
           "(increase(ceems_rapl_package_joules_total[" + aligned_window +
           "]))"),
      rule("report:emission_factor_gCo2_kWh",
           "avg by (provider) (avg_over_time(ceems_emissions_gCo2_kWh[" +
               aligned_window + "]))"),
  };
  return {group};
}

std::vector<tsdb::RuleGroup> equal_split_baseline_rules(
    const std::string& /*rate_window*/) {
  RuleGroup group;
  group.name = "baseline-equal-split";
  group.rules = {
      // Whole node power divided equally among resident units — the naive
      // estimator CEEMS improves on (E2 ablation).
      rule("uuid:node_power_equal",
           "uuid:ones * on(hostname) group_left() "
           "(instance:ipmi_watts / clamp_min(instance:njobs, 1))"),
      rule("ceems_job_power_watts_equalsplit",
           "sum by (hostname, nodegroup, uuid) (uuid:node_power_equal)"),
  };
  return {group};
}

}  // namespace ceems::core
