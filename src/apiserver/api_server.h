// CEEMS API server HTTP surface (§II-B.b): JSON endpoints serving the
// units DB — per-user job lists with aggregate metrics (Fig. 2b), usage
// rollups per user/project (Fig. 2a) and the ownership-verification
// endpoint the load balancer falls back to when it cannot read the DB file
// directly (§II-C).
//
// The requesting user is taken from the X-Grafana-User header, exactly as
// Grafana forwards it (send_user_header). Admin users see everything.
#pragma once

#include <memory>
#include <set>
#include <string>

#include "apiserver/updater.h"
#include "http/server.h"
#include "reldb/database.h"

namespace ceems::apiserver {

inline constexpr const char* kGrafanaUserHeader = "X-Grafana-User";

struct ApiServerConfig {
  http::ServerConfig http;
  std::set<std::string> admin_users;
  // When true (default), members of a project can view each other's units —
  // matching CEEMS' project-level visibility.
  bool project_shared_visibility = true;
};

class ApiServer {
 public:
  ApiServer(ApiServerConfig config, reldb::Database& db,
            common::ClockPtr clock);
  ~ApiServer();

  void start();
  void stop();
  uint16_t port() const { return server_.port(); }
  std::string base_url() const { return server_.base_url(); }

  // Direct ownership check (also used by the LB's direct-DB path).
  bool verify_ownership(const std::string& user, const std::string& uuid) const;

  // Handlers (exposed for unit tests without sockets).
  http::Response handle_units(const http::Request& request) const;
  http::Response handle_unit_detail(const http::Request& request) const;
  http::Response handle_usage(const http::Request& request) const;
  http::Response handle_verify(const http::Request& request) const;
  http::Response handle_users(const http::Request& request) const;
  http::Response handle_projects(const http::Request& request) const;

 private:
  bool is_admin(const std::string& user) const {
    return config_.admin_users.count(user) > 0;
  }
  std::string current_user(const http::Request& request) const;

  ApiServerConfig config_;
  reldb::Database& db_;
  common::ClockPtr clock_;
  http::Server server_;
};

}  // namespace ceems::apiserver
