file(REMOVE_RECURSE
  "CMakeFiles/bench_jean_zay_scale.dir/bench_jean_zay_scale.cpp.o"
  "CMakeFiles/bench_jean_zay_scale.dir/bench_jean_zay_scale.cpp.o.d"
  "bench_jean_zay_scale"
  "bench_jean_zay_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jean_zay_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
