
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/clock.cpp" "src/common/CMakeFiles/ceems_common.dir/clock.cpp.o" "gcc" "src/common/CMakeFiles/ceems_common.dir/clock.cpp.o.d"
  "/root/repo/src/common/json.cpp" "src/common/CMakeFiles/ceems_common.dir/json.cpp.o" "gcc" "src/common/CMakeFiles/ceems_common.dir/json.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/ceems_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/ceems_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/common/CMakeFiles/ceems_common.dir/rng.cpp.o" "gcc" "src/common/CMakeFiles/ceems_common.dir/rng.cpp.o.d"
  "/root/repo/src/common/strutil.cpp" "src/common/CMakeFiles/ceems_common.dir/strutil.cpp.o" "gcc" "src/common/CMakeFiles/ceems_common.dir/strutil.cpp.o.d"
  "/root/repo/src/common/threadpool.cpp" "src/common/CMakeFiles/ceems_common.dir/threadpool.cpp.o" "gcc" "src/common/CMakeFiles/ceems_common.dir/threadpool.cpp.o.d"
  "/root/repo/src/common/yamlconf.cpp" "src/common/CMakeFiles/ceems_common.dir/yamlconf.cpp.o" "gcc" "src/common/CMakeFiles/ceems_common.dir/yamlconf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
