// Resource-manager adapters — the "agnostic" in the paper's title. The
// API server's updater only sees this interface; per-manager adapters map
// native job records into the unified Unit schema. SlurmAdapter wraps the
// slurmdbd simulator; OpenstackAdapter shows the same contract for a
// VM-shaped manager (future-work §IV, exercised in tests).
#pragma once

#include <memory>
#include <vector>

#include "apiserver/schema.h"
#include "slurm/slurmdbd.h"

namespace ceems::apiserver {

class ResourceManagerAdapter {
 public:
  virtual ~ResourceManagerAdapter() = default;
  virtual std::string manager_name() const = 0;
  // Units whose records changed at/after `since_ms`.
  virtual std::vector<Unit> fetch_units_changed_since(
      common::TimestampMs since_ms) = 0;
};

using AdapterPtr = std::shared_ptr<ResourceManagerAdapter>;

class SlurmAdapter final : public ResourceManagerAdapter {
 public:
  SlurmAdapter(const slurm::SlurmDbd& dbd, std::string cluster)
      : dbd_(dbd), cluster_(std::move(cluster)) {}

  std::string manager_name() const override { return "slurm"; }
  std::vector<Unit> fetch_units_changed_since(
      common::TimestampMs since_ms) override;

  static Unit to_unit(const slurm::Job& job, const std::string& cluster);

 private:
  const slurm::SlurmDbd& dbd_;
  std::string cluster_;
};

// Kubernetes-style adapter (§IV long-term objective): pods become compute
// units; the namespace plays the project role, the service account the
// user role — mirroring how Kubelet-managed cgroups would be scraped.
class K8sAdapter final : public ResourceManagerAdapter {
 public:
  explicit K8sAdapter(std::string cluster) : cluster_(std::move(cluster)) {}

  std::string manager_name() const override { return "k8s"; }
  std::vector<Unit> fetch_units_changed_since(
      common::TimestampMs since_ms) override;

  // Simulates a pod lifecycle event from the API server watch stream.
  void report_pod(const std::string& pod_uid, const std::string& pod_name,
                  const std::string& service_account,
                  const std::string& name_space, double cpu_request_cores,
                  int64_t memory_request_bytes, int gpu_requests,
                  const std::string& phase, common::TimestampMs created_ms,
                  common::TimestampMs started_ms,
                  common::TimestampMs ended_ms);

 private:
  std::string cluster_;
  std::vector<std::pair<common::TimestampMs, Unit>> events_;
};

// Minimal Openstack-style adapter: VMs with flavors, fed programmatically.
// Demonstrates that a second manager plugs into the same schema without
// touching the updater (the paper's §IV long-term objective).
class OpenstackAdapter final : public ResourceManagerAdapter {
 public:
  explicit OpenstackAdapter(std::string cluster)
      : cluster_(std::move(cluster)) {}

  std::string manager_name() const override { return "openstack"; }
  std::vector<Unit> fetch_units_changed_since(
      common::TimestampMs since_ms) override;

  // Simulates the Nova API reporting a VM lifecycle event.
  void report_vm(const std::string& vm_uuid, const std::string& user,
                 const std::string& project, int vcpus, int64_t memory_bytes,
                 const std::string& state, common::TimestampMs created_ms,
                 common::TimestampMs started_ms, common::TimestampMs ended_ms);

 private:
  std::string cluster_;
  std::vector<std::pair<common::TimestampMs, Unit>> events_;
};

}  // namespace ceems::apiserver
