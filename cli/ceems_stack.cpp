// ceems_stack — the whole Fig. 1 deployment in one process, on the REAL
// clock: a simulated cluster churns jobs in real time while the exporters,
// scrape loop, recording rules, long-term store, API server and LB all run
// live. Point curl or a browser at the printed URLs.
//
//   ceems_stack [--config FILE] [--scale 0.005] [--jobs-per-day 4000]
//               [--speedup 60]
//
// --speedup compresses simulated time: at 60, every wall second advances
// the cluster by one simulated minute (jobs actually finish while you
// watch). Scrapes/updates run on the simulated clock pipeline.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "cli/flags.h"
#include "common/logging.h"
#include "core/config.h"
#include "dashboard/grafana_export.h"

using namespace ceems;

namespace {
volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  cli::Flags flags(argc, argv,
                   "[--config FILE] [--scale F] [--jobs-per-day N] "
                   "[--speedup N]");
  common::set_log_level(common::LogLevel::kInfo);

  // --export-grafana DIR: write the Fig. 2 dashboard provisioning JSON
  // and exit (no stack started).
  std::string grafana_dir = flags.get("export-grafana");
  if (!grafana_dir.empty()) {
    if (!dashboard::export_grafana_dashboards(grafana_dir)) {
      std::fprintf(stderr, "failed to write dashboards to %s\n",
                   grafana_dir.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote ceems-{user,job,operator}.json to %s\n",
                 grafana_dir.c_str());
    return 0;
  }

  core::LoadedConfig config;
  std::string config_path = flags.get("config");
  if (!config_path.empty()) {
    std::ifstream in(config_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", config_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    config = core::parse_config_text(buffer.str());
  } else {
    config = core::parse_config_text(core::reference_config_yaml());
  }
  config.sim.cluster_scale =
      flags.get_double("scale", config.sim.cluster_scale);
  config.sim.jobs_per_day =
      flags.get_double("jobs-per-day", config.sim.jobs_per_day);
  int64_t speedup = flags.get_int("speedup", 60);

  auto clock = common::make_sim_clock(common::RealClock().now_ms());
  slurm::JeanZayScale scale =
      slurm::JeanZayScale{}.scaled(config.sim.cluster_scale);
  auto gen = slurm::make_jean_zay_workload_config(scale,
                                                  config.sim.jobs_per_day);
  gen.seed = config.sim.seed;
  slurm::ClusterSim sim(clock,
                        slurm::make_jean_zay_cluster(clock, scale,
                                                     config.sim.seed),
                        gen, config.sim.seed);
  core::CeemsStack stack(sim, config.stack);
  stack.start_servers();

  std::fprintf(stderr,
               "CEEMS stack up: %zu nodes, x%lld time compression\n"
               "  query (via LB):  %s/api/v1/query?query=sum(up)\n"
               "  API server:      %s/api/v1/usage?scope=user\n"
               "  (send the X-Grafana-User header; admins: admin)\n",
               sim.cluster().node_count(), (long long)speedup,
               stack.lb_url().c_str(), stack.api_url().c_str());

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  common::TimestampMs next_update = clock->now_ms();
  while (!g_stop) {
    // One wall second = `speedup` simulated seconds, in 10 s sim steps.
    for (int64_t advanced = 0; advanced < speedup * 1000 && !g_stop;
         advanced += 10000) {
      sim.step(10000);
      stack.pipeline_step();
      if (clock->now_ms() >= next_update) {
        stack.update_api();
        next_update = clock->now_ms() + 60000;
      }
    }
    std::this_thread::sleep_for(std::chrono::seconds(1));
  }
  std::fprintf(stderr, "shutting down: %llu jobs churned, %zu units in DB\n",
               (unsigned long long)sim.jobs_submitted(),
               stack.db().table_size(apiserver::kUnitsTable));
  stack.stop_servers();
  return 0;
}
