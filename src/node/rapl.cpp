#include "node/rapl.h"

#include "common/strutil.h"

namespace ceems::node {

namespace {
// Typical max_energy_range_uj on Xeon-class parts (~262 kJ).
constexpr int64_t kDefaultMaxRangeUj = 262143328850;
constexpr const char* kPowercapRoot = "/sys/class/powercap";
}  // namespace

void RaplDomain::add_energy_uj(int64_t delta_uj) {
  lifetime_uj_ += static_cast<double>(delta_uj);
  energy_uj_ += delta_uj;
  while (energy_uj_ >= max_range_uj_) energy_uj_ -= max_range_uj_;
}

RaplBank::RaplBank(simfs::PseudoFsPtr fs, const NodeSpec& spec)
    : fs_(std::move(fs)), has_dram_(spec.rapl_has_dram()) {
  for (int socket = 0; socket < spec.sockets; ++socket) {
    packages_.emplace_back("package-" + std::to_string(socket),
                           kDefaultMaxRangeUj);
    if (has_dram_) dram_.emplace_back("dram", kDefaultMaxRangeUj);
  }
  publish();
}

void RaplBank::integrate(double pkg_w, double dram_w, int64_t dt_ms) {
  double seconds = static_cast<double>(dt_ms) / 1000.0;
  auto sockets = static_cast<double>(packages_.size());
  for (auto& domain : packages_) {
    domain.add_energy_uj(
        static_cast<int64_t>(pkg_w / sockets * seconds * 1e6));
  }
  for (auto& domain : dram_) {
    domain.add_energy_uj(
        static_cast<int64_t>(dram_w / sockets * seconds * 1e6));
  }
  publish();
}

void RaplBank::publish() {
  for (std::size_t socket = 0; socket < packages_.size(); ++socket) {
    std::string base =
        std::string(kPowercapRoot) + "/intel-rapl:" + std::to_string(socket);
    fs_->write(base + "/name", packages_[socket].name() + "\n");
    fs_->write(base + "/energy_uj",
               std::to_string(packages_[socket].energy_uj()) + "\n");
    fs_->write(base + "/max_energy_range_uj",
               std::to_string(packages_[socket].max_energy_range_uj()) + "\n");
    if (has_dram_ && socket < dram_.size()) {
      std::string sub = base + ":0";
      fs_->write(sub + "/name", "dram\n");
      fs_->write(sub + "/energy_uj",
                 std::to_string(dram_[socket].energy_uj()) + "\n");
      fs_->write(sub + "/max_energy_range_uj",
                 std::to_string(dram_[socket].max_energy_range_uj()) + "\n");
    }
  }
}

std::vector<RaplReading> read_rapl(const simfs::Fs& fs) {
  std::vector<RaplReading> readings;
  for (const auto& entry : fs.list_dir(kPowercapRoot)) {
    if (!common::starts_with(entry, "intel-rapl:")) continue;
    std::string base = std::string(kPowercapRoot) + "/" + entry;
    auto name = fs.read(base + "/name");
    auto energy = fs.read(base + "/energy_uj");
    auto max_range = fs.read(base + "/max_energy_range_uj");
    if (!name || !energy || !max_range) continue;
    RaplReading reading;
    reading.domain = std::string(common::trim(*name));
    // Socket index: first number after "intel-rapl:".
    auto parts = common::split(entry.substr(11), ':');
    reading.index = static_cast<int>(
        common::parse_int64(parts.empty() ? "0" : parts[0]).value_or(0));
    reading.energy_uj = common::parse_int64(*energy).value_or(0);
    reading.max_energy_range_uj = common::parse_int64(*max_range).value_or(0);
    readings.push_back(std::move(reading));
  }
  return readings;
}

double rapl_joules_between(int64_t before_uj, int64_t after_uj,
                           int64_t max_range_uj) {
  int64_t delta = after_uj - before_uj;
  if (delta < 0 && max_range_uj > 0) delta += max_range_uj;  // one wrap
  if (delta < 0) delta = 0;
  return static_cast<double>(delta) * 1e-6;
}

}  // namespace ceems::node
