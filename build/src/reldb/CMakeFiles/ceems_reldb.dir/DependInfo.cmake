
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reldb/database.cpp" "src/reldb/CMakeFiles/ceems_reldb.dir/database.cpp.o" "gcc" "src/reldb/CMakeFiles/ceems_reldb.dir/database.cpp.o.d"
  "/root/repo/src/reldb/table.cpp" "src/reldb/CMakeFiles/ceems_reldb.dir/table.cpp.o" "gcc" "src/reldb/CMakeFiles/ceems_reldb.dir/table.cpp.o.d"
  "/root/repo/src/reldb/value.cpp" "src/reldb/CMakeFiles/ceems_reldb.dir/value.cpp.o" "gcc" "src/reldb/CMakeFiles/ceems_reldb.dir/value.cpp.o.d"
  "/root/repo/src/reldb/wal.cpp" "src/reldb/CMakeFiles/ceems_reldb.dir/wal.cpp.o" "gcc" "src/reldb/CMakeFiles/ceems_reldb.dir/wal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ceems_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
