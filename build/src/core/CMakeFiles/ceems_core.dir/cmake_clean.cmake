file(REMOVE_RECURSE
  "CMakeFiles/ceems_core.dir/config.cpp.o"
  "CMakeFiles/ceems_core.dir/config.cpp.o.d"
  "CMakeFiles/ceems_core.dir/node_exporter_factory.cpp.o"
  "CMakeFiles/ceems_core.dir/node_exporter_factory.cpp.o.d"
  "CMakeFiles/ceems_core.dir/rules_library.cpp.o"
  "CMakeFiles/ceems_core.dir/rules_library.cpp.o.d"
  "CMakeFiles/ceems_core.dir/stack.cpp.o"
  "CMakeFiles/ceems_core.dir/stack.cpp.o.d"
  "libceems_core.a"
  "libceems_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceems_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
