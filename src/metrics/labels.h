// Label sets — the identity of a time series in the Prometheus data model.
// Stored as a sorted vector of (name, value) pairs; sortedness makes
// equality, ordering and fingerprinting cheap and canonical.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ceems::metrics {

// Reserved label holding the metric name, as in Prometheus.
inline constexpr std::string_view kMetricNameLabel = "__name__";

class Labels {
 public:
  using Pair = std::pair<std::string, std::string>;

  Labels() = default;
  Labels(std::initializer_list<Pair> pairs);
  explicit Labels(std::vector<Pair> pairs);

  // Returns the value for `name`, or nullopt.
  std::optional<std::string_view> get(std::string_view name) const;
  bool has(std::string_view name) const { return get(name).has_value(); }

  // Returns a copy with `name` set to `value` (replacing any existing).
  Labels with(std::string_view name, std::string_view value) const;
  // Returns a copy without `name`.
  Labels without(std::string_view name) const;
  // Returns a copy keeping only the given names (PromQL `by` semantics).
  Labels keep_only(const std::vector<std::string>& names) const;
  // Returns a copy dropping the given names (PromQL `without` semantics).
  Labels drop(const std::vector<std::string>& names) const;

  // Convenience for the metric name label.
  std::string_view name() const;
  Labels with_name(std::string_view metric_name) const {
    return with(kMetricNameLabel, metric_name);
  }
  Labels without_name() const { return without(kMetricNameLabel); }

  const std::vector<Pair>& pairs() const { return pairs_; }
  std::size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }

  // Stable 64-bit fingerprint (FNV-1a over name/value bytes).
  uint64_t fingerprint() const;

  // Canonical rendering: {a="b",c="d"} — used in series keys and errors.
  std::string to_string() const;

  bool operator==(const Labels& other) const { return pairs_ == other.pairs_; }
  bool operator!=(const Labels& other) const { return !(*this == other); }
  bool operator<(const Labels& other) const { return pairs_ < other.pairs_; }

 private:
  void normalize();
  std::vector<Pair> pairs_;  // sorted by name, unique names
};

struct LabelsHash {
  std::size_t operator()(const Labels& labels) const {
    return static_cast<std::size_t>(labels.fingerprint());
  }
};

class InternedLabels;  // metrics/symbols.h

// A label matcher as used in PromQL selectors: name op "value".
struct LabelMatcher {
  enum class Op { kEq, kNe, kRegexMatch, kRegexNoMatch };
  std::string name;
  Op op = Op::kEq;
  std::string value;

  bool matches(const Labels& labels) const;
  // Interned overload (defined in symbols.cpp): same semantics, resolves
  // label values through the symbol table without materialising Labels.
  bool matches(const InternedLabels& labels) const;
};

}  // namespace ceems::metrics
